"""The engine-scale harness: smoke run, schema, and the events/sec gate.

The smoke tier doubles as the tier-1 perf gate for the event engine:
it re-runs the gate-protocol scenario (profiler disabled, GC off,
setup-subtracted) and fails if the best pass falls more than 20% below
the events/sec recorded in the committed full-run ``BENCH_sim.json``.
Unlike the EC gate this compares an *absolute* rate, so the gate
statistic is the best of three passes — a real regression drags every
pass down, while transient host noise can only slow passes, never
inflate the best one.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.bench_sim_engine import (
    GATE_PASSES,
    MAX_DISABLED_OVERHEAD_PERCENT,
    SCHEMA_VERSION,
    run,
)
from benchmarks.common import REPO_ROOT

pytestmark = pytest.mark.prof

#: A fresh best-pass may sit this far below the committed best before
#: the gate trips (the >20% regression line).
REGRESSION_TOLERANCE = 0.8


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    """One smoke pass per test module (writes outside the repo tree)."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_sim.json"
    report = run(smoke=True, out_path=out)
    return report, out


class TestSchema:
    def test_file_round_trips(self, smoke_report):
        report, path = smoke_report
        assert path.exists()
        assert json.loads(path.read_text()) == json.loads(json.dumps(report))

    def test_top_level_keys(self, smoke_report):
        report, _ = smoke_report
        assert report["benchmark"] == "sim"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is True
        for key in ("gate", "profiled", "optimization"):
            assert key in report

    def test_gate_section(self, smoke_report):
        report, _ = smoke_report
        gate = report["gate"]
        assert gate["events"] > 10_000
        assert gate["repaired"] > 0
        assert len(gate["passes_events_per_s"]) == GATE_PASSES
        assert gate["events_per_s"] == max(gate["passes_events_per_s"])
        assert gate["events_per_s"] > 0
        assert 0 < gate["engine_wall_s"] < 60

    def test_disabled_overhead_bounded_in_fresh_run(self, smoke_report):
        """The disabled-hooks contract, re-proven on every smoke run."""
        report, _ = smoke_report
        ov = report["gate"]["disabled_overhead"]
        assert ov["max_overhead_percent"] == MAX_DISABLED_OVERHEAD_PERCENT
        assert ov["implied_overhead_percent"] <= MAX_DISABLED_OVERHEAD_PERCENT
        assert ov["pass"] is True
        # the empty-run dispatch (upper bound on the added entry cost)
        # stays in microbenchmark territory
        assert ov["empty_run_dispatch_ns"] < 50_000

    def test_profiled_section(self, smoke_report):
        report, _ = smoke_report
        prof = report["profiled"]
        assert prof["events"] == report["gate"]["events"]
        assert prof["events_per_s"] > 0
        assert prof["heartbeats"] >= 1
        assert prof["hot_sites"], "profiler attributed no sites"
        top = prof["hot_sites"][0]
        for key in ("site", "events", "self_ms", "mean_us"):
            assert key in top
        # the data plane, not the profiler's own bookkeeping, must top
        # the attribution for a slice-heavy scenario
        assert "DataNode" in top["site"]

    def test_optimization_record(self, smoke_report):
        report, _ = smoke_report
        opt = report["optimization"]
        before, after = opt["before"], opt["after"]
        assert after["tick_mean_us"] < before["tick_mean_us"] / 3
        assert (
            after["disabled_events_per_s_median"]
            > before["disabled_events_per_s_median"]
        )
        # the live re-measurement keeps the claim falsifiable: the
        # optimised tick must stay well under the recorded before cost
        live = after.get("tick_mean_us_this_run")
        if live is not None:
            assert live < before["tick_mean_us"] * 0.6

    def test_artefacts_written(self, smoke_report):
        report, _ = smoke_report
        prof = report["profiled"]
        for rel in prof["artefacts"]:
            path = REPO_ROOT / rel
            assert path.exists(), rel
        speedscope = json.loads(
            (REPO_ROOT / prof["artefacts"][0]).read_text()
        )
        assert speedscope["profiles"][0]["type"] == "sampled"
        assert speedscope["profiles"][0]["weights"]
        heartbeats = [
            json.loads(line)
            for line in (REPO_ROOT / prof["artefacts"][2])
            .read_text().splitlines()
        ]
        assert len(heartbeats) == prof["heartbeats"]
        assert heartbeats[-1]["final"] is True


class TestCommittedArtifact:
    def test_committed_artifact_matches_schema(self):
        path = REPO_ROOT / "BENCH_sim.json"
        assert path.exists(), "run `python -m benchmarks.bench_sim_engine`"
        report = json.loads(path.read_text())
        assert report["benchmark"] == "sim"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is False
        assert report["gate"]["disabled_overhead"]["pass"] is True

    def test_committed_million_event_run(self):
        """The headline scale target: ~1M events through one recovery."""
        report = json.loads((REPO_ROOT / "BENCH_sim.json").read_text())
        million = report["million_event"]
        assert million["disabled"]["events"] >= 900_000
        assert million["disabled"]["events_per_s"] > 0
        assert million["profiled"]["events"] >= 900_000
        assert million["profiled"]["heartbeats"] >= 3

    def test_merges_into_bench_trajectory(self):
        """`repro bench report` picks the artefact up like the others."""
        from repro.analysis import merge_bench_reports, render_bench_trajectory

        report = json.loads((REPO_ROOT / "BENCH_sim.json").read_text())
        merged = merge_bench_reports({"BENCH_sim.json": report})
        (entry,) = merged["reports"]
        assert entry["benchmark"] == "sim"
        assert "gate.events_per_s" in entry["metrics"]
        text = render_bench_trajectory(merged)
        assert "gate.events_per_s" in text

    def test_regression_gate_vs_committed_events_per_s(self, smoke_report):
        """>20% events/sec drop at the gate protocol fails tier-1.

        Both sides measure the same scenario with the same protocol
        (best of GATE_PASSES setup-subtracted passes, GC off), so the
        comparison is like-for-like on one host.  Absolute rates do not
        cancel host speed the way the EC ratios do — the committed
        artefact must be regenerated when the reference machine
        changes.
        """
        committed = json.loads((REPO_ROOT / "BENCH_sim.json").read_text())
        fresh, _ = smoke_report
        base = committed["gate"]["events_per_s"]
        measured = fresh["gate"]["events_per_s"]
        floor = base * REGRESSION_TOLERANCE
        assert measured >= floor, (
            f"engine events/s regressed: measured {measured:.0f}/s "
            f"vs committed {base:.0f}/s (floor {floor:.0f}/s)"
        )
