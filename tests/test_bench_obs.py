"""The observability overhead harness: smoke run + BENCH_obs.json gate."""

from __future__ import annotations

import json

import pytest

from benchmarks.bench_obs import MAX_OVERHEAD_PERCENT, SCHEMA_VERSION, run
from benchmarks.common import REPO_ROOT

pytestmark = pytest.mark.obs_overhead


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    """One smoke pass per test module (writes outside the repo tree)."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_obs.json"
    report = run(smoke=True, out_path=out)
    return report, out


class TestSchema:
    def test_file_round_trips(self, smoke_report):
        report, path = smoke_report
        assert path.exists()
        assert json.loads(path.read_text()) == json.loads(json.dumps(report))

    def test_top_level_keys(self, smoke_report):
        report, _ = smoke_report
        assert report["benchmark"] == "obs"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is True
        for key in ("null_primitives", "instrumentation_counts", "gate",
                    "traced_e2e"):
            assert key in report

    def test_null_primitives_measured(self, smoke_report):
        report, _ = smoke_report
        prim = report["null_primitives"]
        for key in ("event_ns", "span_pair_ns", "counter_inc_ns",
                    "counter_factory_inc_ns", "fleet_observe_ns",
                    "enabled_check_ns"):
            assert prim[key] > 0
        # a no-op primitive must stay in the nanoseconds regime
        assert max(prim.values()) < 100_000

    def test_planning_path_is_lightly_instrumented(self, smoke_report):
        report, _ = smoke_report
        counts = report["instrumentation_counts"]
        assert counts["total"] == counts["tracer_calls"] + counts["metrics_calls"]
        # a planning request makes a handful of obs calls, not thousands
        assert 0 < counts["total"] < 200

    def test_traced_e2e_informational(self, smoke_report):
        report, _ = smoke_report
        e2e = report["traced_e2e"]
        assert e2e["null_wall_s"] > 0
        assert e2e["traced_wall_s"] > 0


class TestGate:
    def test_smoke_run_passes_gate(self, smoke_report):
        report, _ = smoke_report
        gate = report["gate"]
        assert gate["max_overhead_percent"] == MAX_OVERHEAD_PERCENT
        assert gate["overhead_percent"] <= MAX_OVERHEAD_PERCENT
        assert gate["pass"] is True

    def test_committed_artifact_passes_gate(self):
        """The repo-root artefact (full run) must stay schema-valid and
        inside the 3% budget — the CI tripwire for creeping no-op cost."""
        path = REPO_ROOT / "BENCH_obs.json"
        assert path.exists(), "run `python -m benchmarks.bench_obs`"
        report = json.loads(path.read_text())
        assert report["benchmark"] == "obs"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is False
        assert report["gate"]["overhead_percent"] <= MAX_OVERHEAD_PERCENT
        assert report["gate"]["pass"] is True
