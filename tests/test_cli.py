"""Command-line interface."""

import json
import logging

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.algorithm == "fullrepair"
        assert args.k == 3

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--algorithm", "magic"])


class TestPlanCommand:
    def test_demo_plan(self, capsys):
        assert main(["plan", "--chunk-mib", "8"]) == 0
        out = capsys.readouterr().out
        assert "fullrepair" in out
        assert "900.0 Mbps" in out
        assert "transfer" in out

    def test_plan_from_bandwidth_file(self, tmp_path, capsys):
        path = tmp_path / "bw.txt"
        np.savetxt(path, np.array([[1000.0, 600, 960, 600, 600],
                                   [1000.0, 300, 1000, 300, 300]]))
        assert main(["plan", "--bandwidth", str(path), "--algorithm", "rp"]) == 0
        out = capsys.readouterr().out
        assert "plan: rp" in out

    def test_csv_bandwidth_file(self, tmp_path, capsys):
        path = tmp_path / "bw.csv"
        path.write_text("1000,600,960,600,600\n1000,300,1000,300,300\n")
        assert main(["plan", "--bandwidth", str(path)]) == 0
        assert "900.0" in capsys.readouterr().out

    def test_malformed_bandwidth_file(self, tmp_path):
        path = tmp_path / "bw.txt"
        np.savetxt(path, np.ones((3, 4)))
        with pytest.raises(SystemExit):
            main(["plan", "--bandwidth", str(path)])


class TestTraceCommand:
    def test_trace_summary(self, capsys):
        assert main(["trace", "swim", "--snapshots", "100"]) == 0
        out = capsys.readouterr().out
        assert "swim" in out and "100 snapshots" in out

    def test_trace_save_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "t"
        assert main([
            "trace", "tpcds", "--snapshots", "50", "--out", str(out_path)
        ]) == 0
        from repro.workloads import load_trace

        trace = load_trace(str(out_path) + ".npz")
        assert len(trace) == 50
        assert trace.workload == "tpcds"


class TestTraceRepairCommand:
    def test_timeline_and_exports(self, tmp_path, capsys):
        chrome = tmp_path / "repair.chrome.json"
        jsonl = tmp_path / "repair.spans.jsonl"
        assert main([
            "trace", "repair", "--out", str(chrome), "--jsonl", str(jsonl),
        ]) == 0
        out = capsys.readouterr().out
        assert "repair s1" in out
        assert "events:" in out
        assert "watchdog.fire" in out
        assert "replans" in out  # the summary line
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        lines = jsonl.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)


class TestMetricsCommand:
    def test_prometheus_snapshot_stdout(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_repair_seconds histogram" in out
        assert "repro_throughput_ratio" in out

    def test_prometheus_snapshot_file(self, tmp_path, capsys):
        path = tmp_path / "m.prom"
        assert main(["metrics", "--out", str(path)]) == 0
        assert capsys.readouterr().out == ""  # file mode keeps stdout clean
        assert "repro_repairs_total" in path.read_text()


class TestLogging:
    def test_status_is_logged_not_printed(self, tmp_path, capsys, caplog):
        out_path = tmp_path / "t"
        assert main([
            "trace", "swim", "--snapshots", "20", "--out", str(out_path),
        ]) == 0
        assert "saved to" not in capsys.readouterr().out
        # default level is WARNING: the info-level status never fires
        assert not any("saved to" in r.getMessage() for r in caplog.records)

        assert main([
            "-v", "trace", "swim", "--snapshots", "20", "--out", str(out_path),
        ]) == 0
        assert "saved to" not in capsys.readouterr().out  # never on stdout
        assert any(
            "saved to" in r.getMessage() and r.name == "repro.cli"
            for r in caplog.records
        )

    def test_quiet_drops_to_errors(self):
        assert main(["-q", "sweep", "chunk"]) == 0
        assert logging.getLogger("repro").level == logging.ERROR

    def test_repeated_main_calls_install_one_handler(self):
        main(["-v", "sweep", "chunk"])
        main(["-v", "sweep", "chunk"])
        handlers = [
            h for h in logging.getLogger("repro").handlers
            if getattr(h, "_repro_cli", False)
        ]
        assert len(handlers) == 1


class TestAttrCommand:
    def test_breakdown_sums_to_gap(self, capsys):
        assert main(["attr"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck attribution: repair s1" in out
        for bucket in ("fault_recovery", "plan_suboptimality",
                       "straggler", "queueing"):
            assert bucket in out
        # the total row carries the exact-sum invariant end to end
        assert "100.0%" in out
        total = next(
            line for line in out.splitlines()
            if line.strip().startswith("total")
        )
        assert "100.0%" in total


class TestFleetCommand:
    def test_snapshot_table(self, capsys):
        assert main(["fleet", "--repairs", "10"]) == 0
        out = capsys.readouterr().out
        assert "fleet aggregation" in out
        assert "repro_repair_seconds" in out
        assert "repro_achieved_mbps" in out


class TestSloCommand:
    def test_verdicts_and_transitions(self, capsys):
        assert main(["slo", "--repairs", "20"]) == 0
        out = capsys.readouterr().out
        assert "SLO rules:" in out
        assert "breach(es)" in out and "recover(ies)" in out
        assert "slo.breach" in out  # the transition log

    def test_custom_rules_and_bad_rule_rejected(self, capsys):
        assert main([
            "slo", "--repairs", "5", "--rules", "count repro_repair_seconds >= 1",
        ]) == 0
        assert "count repro_repair_seconds >= 1" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["slo", "--repairs", "5", "--rules", "p42 nope !! 7"])


class TestBenchReportCommand:
    def test_merges_artifacts(self, tmp_path, capsys):
        (tmp_path / "BENCH_alpha.json").write_text(json.dumps({
            "benchmark": "alpha", "schema_version": 1,
            "config": {"smoke": True},
            "gate": {"pass": True, "overhead_percent": 0.5},
        }))
        (tmp_path / "BENCH_beta.json").write_text(json.dumps({
            "benchmark": "beta", "schema_version": 2,
            "median_us": 12.5,
        }))
        (tmp_path / "BENCH_beta.smoke.json").write_text(json.dumps({
            "benchmark": "beta-smoke", "median_us": 1.0,
        }))
        out_json = tmp_path / "merged.json"
        assert main([
            "bench", "report", "--dir", str(tmp_path), "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "| benchmark | metric | value |" in out
        assert "beta-smoke" not in out  # smoke artefacts are transient
        assert "| alpha | gate.overhead_percent | 0.5 |" in out
        assert "| beta | median_us | 12.5 |" in out
        assert "BENCH_alpha.json" in out  # sources footer
        merged = json.loads(out_json.read_text())
        assert [r["benchmark"] for r in merged["reports"]] == ["alpha", "beta"]
        # config values are inputs, not trajectory metrics
        assert "config.smoke" not in merged["reports"][0]["metrics"]

    def test_empty_dir(self, tmp_path, capsys):
        assert main(["bench", "report", "--dir", str(tmp_path)]) == 0
        assert "Sources: none" in capsys.readouterr().out


class TestCompareCommand:
    def test_tiny_sweep(self, capsys):
        assert main([
            "compare", "--workloads", "swim", "--nk", "6,4",
            "--samples", "2", "--snapshots", "200", "--ppt-budget", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "FullRepair" in out
        assert "reduction" in out


class TestSweepCommand:
    def test_chunk_sweep(self, capsys):
        assert main(["sweep", "chunk"]) == 0
        out = capsys.readouterr().out
        assert "MiB" in out


class TestTable1Command:
    def test_small_table(self, capsys):
        assert main(["table1", "--samples", "40", "--snapshots", "300"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out


class TestHeteroCommand:
    def test_sweep_output(self, capsys):
        assert main(["hetero", "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "unevenness" in out and "fullrepair" in out


class TestFullnodeCommand:
    def test_strategies_reported(self, capsys):
        assert main([
            "fullnode", "--stripes", "3", "--chunk-mib", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out and "batched" in out


TINY_LIFETIME = [
    "lifetime", "--stripes", "200", "--groups", "8", "--years", "0.02",
    "--trials", "2", "--mttf-years", "100", "--machine-mttf-years", "0",
    "--workers", "1",
]


class TestLifetimeCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["lifetime"])
        assert args.nk == "14,10"
        assert args.repair == "orchestrated"
        assert args.sweep is None

    def test_quiet_fleet_reports_lower_bound(self, capsys):
        assert main(TINY_LIFETIME) == 0
        out = capsys.readouterr().out
        assert "fleet-lifetime durability: (14,10)" in out
        assert "no data-loss events observed" in out
        assert "MTTDL" in out

    def test_sweep_table(self, capsys):
        assert main(TINY_LIFETIME + ["--sweep", "1", "10"]) == 0
        out = capsys.readouterr().out
        assert "durability vs repair speed" in out
        assert "pipeline_factor" in out

    def test_bad_repair_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lifetime", "--repair", "magic"])
