"""Chunk digests and slice checksums: definition, blocking, input types."""

import zlib

import numpy as np
import pytest

from repro.integrity import DIGEST_BLOCK_BYTES, chunk_digest, slice_checksum

pytestmark = pytest.mark.integrity


class TestChunkDigest:
    def test_matches_whole_buffer_crc32(self):
        rng = np.random.default_rng(0)
        payload = rng.integers(0, 256, 64 * 1024, dtype=np.uint8)
        assert chunk_digest(payload) == zlib.crc32(payload.tobytes())

    def test_block_chaining_equals_monolithic_crc(self):
        # spans three digest blocks with a ragged tail, so the chained
        # value must still equal the CRC of the whole buffer
        rng = np.random.default_rng(1)
        payload = rng.integers(
            0, 256, 2 * DIGEST_BLOCK_BYTES + 4097, dtype=np.uint8
        )
        assert chunk_digest(payload) == zlib.crc32(payload.tobytes())

    def test_accepts_bytes_bytearray_memoryview(self):
        rng = np.random.default_rng(2)
        arr = rng.integers(0, 256, 4096, dtype=np.uint8)
        raw = arr.tobytes()
        expected = chunk_digest(arr)
        assert chunk_digest(raw) == expected
        assert chunk_digest(bytearray(raw)) == expected
        assert chunk_digest(memoryview(raw)) == expected

    def test_rejects_non_uint8_arrays(self):
        with pytest.raises(ValueError, match="uint8"):
            chunk_digest(np.zeros(16, dtype=np.uint16))

    def test_single_byte_flip_changes_digest(self):
        rng = np.random.default_rng(3)
        payload = rng.integers(0, 256, 4096, dtype=np.uint8)
        before = chunk_digest(payload)
        payload[1234] ^= 0x40
        assert chunk_digest(payload) != before

    def test_empty_payload(self):
        assert chunk_digest(np.zeros(0, dtype=np.uint8)) == 0

    def test_unsigned_32_bit_range(self):
        rng = np.random.default_rng(4)
        for _ in range(8):
            payload = rng.integers(0, 256, 512, dtype=np.uint8)
            digest = chunk_digest(payload)
            assert 0 <= digest <= 0xFFFFFFFF


class TestSliceChecksum:
    def test_whole_chunk_slice_equals_chunk_digest(self):
        rng = np.random.default_rng(5)
        payload = rng.integers(0, 256, 4096, dtype=np.uint8)
        assert slice_checksum(payload) == chunk_digest(payload)

    def test_detects_in_flight_flip(self):
        rng = np.random.default_rng(6)
        payload = rng.integers(0, 256, 4096, dtype=np.uint8)
        stamp = slice_checksum(payload)
        wire = payload.copy()
        wire[77] ^= 0x01
        assert slice_checksum(wire) != stamp
