"""Shared builders for the integrity test suite.

Every test runs against an RS(9, 6) stripe: with 8 surviving stored
chunks that is k + 2 values, enough surplus for the leave-one-out
localization the post-repair audit relies on.
"""

import numpy as np

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.net import BandwidthSnapshot

NUM_NODES = 14
CHUNK = 16 * 1024
N, K = 9, 6


def build_system(seed=1, tracer=None, metrics=None, **kw):
    """A 14-node RS(9, 6) cluster with one stripe on nodes 0..8.

    Returns ``(system, chunks, loc)`` where ``chunks`` maps stripe
    index -> the original payload (the byte-identity ground truth).
    """
    sys_ = ClusterSystem(
        NUM_NODES, RSCode(N, K), slice_bytes=4096,
        tracer=tracer, metrics=metrics, **kw,
    )
    rng = np.random.default_rng(seed)
    sys_.set_bandwidth(
        BandwidthSnapshot(
            uplink=rng.uniform(300.0, 1000.0, NUM_NODES),
            downlink=rng.uniform(300.0, 1000.0, NUM_NODES),
        )
    )
    data = rng.integers(0, 256, (K, CHUNK), dtype=np.uint8)
    loc = sys_.write_stripe("s0", data, placement=tuple(range(N)))
    chunks = {
        i: sys_.nodes[loc.placement[i]].store.get("s0", i) for i in range(N)
    }
    return sys_, chunks, loc
