"""The corruption fault matrix.

{bit rot, torn write, wire corruption} x {hub, helper, requester} x
{before plan, mid-pipeline}: every cell must terminate with a verified,
byte-identical repair, and detection/quarantine must fire exactly where
the fault is actually observable:

* **bit rot** on a stored chunk (hub or leaf helper) is caught either at
  assign time (digest check before the chunk enters a plan) or by the
  post-repair parity audit (rot landing after the slices were read), and
  the chunk is quarantined; the requester stores nothing, so rot
  targeting it is a no-op.
* **torn write** only fires on a ``put`` — the requester's settle store
  is the only write in a repair, caught by digest read-back and
  re-written; helpers never write, so arming them is a no-op.
* **wire corruption** garbles slices in flight: any *sender* (hub or
  leaf helper) trips the per-slice checksum at the next hop and
  retransmits; the requester sends nothing.
"""

import numpy as np
import pytest

from repro.faults import FAILED

from .conftest import build_system

pytestmark = pytest.mark.integrity

REQUESTER = 9
MID_T = 0.0005  # after dispatch+assign, before the pipelines drain

FAULTS = ("bitrot", "torn", "wire")
ROLES = ("hub", "helper", "requester")
TIMINGS = ("before", "mid")


def pick_nodes(sys_, loc, victim):
    """(hub, leaf helper) of the repair FullRepair will plan.

    Planning is deterministic, so the plan computed here is the plan
    attempt 1 will execute.  The hub is the relay feeding the
    requester; the leaf is any helper sending into the hub.
    """
    plan = sys_.master.schedule_repair("s0", victim, REQUESTER)
    edges = plan.pipelines[0].edges
    hub = next(e.child for e in edges if e.parent == REQUESTER)
    leaf = next(e.child for e in edges if e.parent == hub and e.child != hub)
    return hub, leaf


def inject(sys_, fault, node):
    if fault == "bitrot":
        sys_.corrupt_chunk(node, flips=8, seed=5)
    elif fault == "torn":
        sys_.arm_torn_write(node, tail_fraction=0.3, seed=5)
    else:
        sys_.corrupt_wire(node, duration_s=0.002, seed=5)


def expectations(fault, role):
    """(detected, quarantined) for a cell, from what is observable."""
    if role == "requester":
        return fault == "torn", False
    return fault in ("bitrot", "wire"), fault == "bitrot"


@pytest.mark.parametrize("timing", TIMINGS)
@pytest.mark.parametrize("role", ROLES)
@pytest.mark.parametrize("fault", FAULTS)
def test_matrix_cell(fault, role, timing):
    sys_, chunks, loc = build_system(seed=3)
    victim = loc.placement[0]
    sys_.fail_node(victim)
    hub, leaf = pick_nodes(sys_, loc, victim)
    node = {"hub": hub, "helper": leaf, "requester": REQUESTER}[role]
    if timing == "before":
        inject(sys_, fault, node)
    else:
        sys_.events.schedule_at(
            MID_T, lambda: inject(sys_, fault, node)
        )
    out = sys_.repair("s0", victim, REQUESTER, on_failure="outcome")

    # every cell heals: terminal, verified, byte-identical
    assert out.status != FAILED, out.failure_reason
    assert out.verified
    assert np.array_equal(out.rebuilt, chunks[0])
    stored = sys_.nodes[REQUESTER].store
    assert stored.verify("s0", 0)
    assert np.array_equal(stored.get("s0", 0), chunks[0])

    detected, quarantined = expectations(fault, role)
    assert out.corruption_detected == detected, (fault, role, timing)
    if quarantined:
        lost_chunk = loc.chunk_on(node)
        assert lost_chunk in out.quarantined_chunks
        assert sys_.master.is_quarantined("s0", lost_chunk)
    elif fault != "bitrot":
        assert out.quarantined_chunks == ()


def test_matrix_cells_are_reproducible():
    def run(fault, role, timing):
        sys_, _, loc = build_system(seed=3)
        victim = loc.placement[0]
        sys_.fail_node(victim)
        hub, leaf = pick_nodes(sys_, loc, victim)
        node = {"hub": hub, "helper": leaf, "requester": REQUESTER}[role]
        if timing == "before":
            inject(sys_, fault, node)
        else:
            sys_.events.schedule_at(MID_T, lambda: inject(sys_, fault, node))
        out = sys_.repair("s0", victim, REQUESTER, on_failure="outcome")
        return (
            out.status, out.attempts, out.retries, out.elapsed_seconds,
            out.bytes_received, out.corruption_detected,
            out.quarantined_chunks,
        )

    for cell in (("bitrot", "hub", "before"), ("wire", "helper", "mid")):
        assert run(*cell) == run(*cell)
