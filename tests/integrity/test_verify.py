"""Parity-consistency checking, localization, and the stripe audit."""

import numpy as np
import pytest

from repro.ec import RSCode
from repro.integrity import audit_stripe, check_consistency, localize_corruption

pytestmark = pytest.mark.integrity

N, K = 9, 6
CHUNK = 2048


@pytest.fixture()
def stripe():
    code = RSCode(N, K)
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, (K, CHUNK), dtype=np.uint8)
    return code, code.encode(data)


class TestCheckConsistency:
    def test_clean_codeword_is_consistent(self, stripe):
        code, chunks = stripe
        values = {i: chunks[i] for i in range(N)}
        ok, predicted = check_consistency(code, values)
        assert ok
        assert np.array_equal(predicted, chunks)

    def test_corrupt_surplus_chunk_trips(self, stripe):
        code, chunks = stripe
        values = {i: chunks[i].copy() for i in range(N)}
        values[8][100] ^= 0xFF  # outside the k-lowest decode set
        ok, _ = check_consistency(code, values)
        assert not ok

    def test_corrupt_decode_set_chunk_trips(self, stripe):
        # corruption inside the decode set skews the prediction, so the
        # clean surplus chunks disagree with it — still detected
        code, chunks = stripe
        values = {i: chunks[i].copy() for i in range(N)}
        values[0][0] ^= 0x55
        ok, _ = check_consistency(code, values)
        assert not ok

    def test_exactly_k_values_is_vacuous(self, stripe):
        code, chunks = stripe
        values = {i: chunks[i].copy() for i in range(K)}
        values[0][0] ^= 0x55  # no surplus left to contradict it
        ok, _ = check_consistency(code, values)
        assert ok

    def test_fewer_than_k_raises(self, stripe):
        code, chunks = stripe
        with pytest.raises(ValueError, match="at least k"):
            check_consistency(code, {i: chunks[i] for i in range(K - 1)})


class TestLocalizeCorruption:
    def test_single_culprit_with_two_surplus(self, stripe):
        code, chunks = stripe
        values = {i: chunks[i].copy() for i in range(K + 2)}
        values[3][10] ^= 0x80
        assert localize_corruption(code, values) == (3,)

    def test_one_surplus_is_ambiguous(self, stripe):
        # with k+1 values every removal drops to exactly k (vacuously
        # consistent), so localization cannot pin the culprit
        code, chunks = stripe
        values = {i: chunks[i].copy() for i in range(K + 1)}
        values[3][10] ^= 0x80
        culprits = localize_corruption(code, values)
        assert len(culprits) > 1 and 3 in culprits

    def test_two_culprits_unexplainable(self, stripe):
        code, chunks = stripe
        values = {i: chunks[i].copy() for i in range(N)}
        values[2][0] ^= 0x01
        values[7][0] ^= 0x01
        assert localize_corruption(code, values) == ()


class TestAuditStripe:
    LOST = 4

    def _stored(self, chunks, exclude=()):
        return {
            i: chunks[i].copy()
            for i in range(N)
            if i != self.LOST and i not in exclude
        }

    def test_clean_repair_passes(self, stripe):
        code, chunks = stripe
        report = audit_stripe(
            code, self.LOST, chunks[self.LOST], self._stored(chunks)
        )
        assert report.ok is True
        assert report.culprits == ()
        assert report.rebuilt_ok is True
        assert report.checked == N - 1

    def test_digest_bad_chunk_is_a_culprit(self, stripe):
        code, chunks = stripe
        report = audit_stripe(
            code, self.LOST, chunks[self.LOST],
            self._stored(chunks, exclude=(2,)), digest_bad=(2,),
        )
        assert report.ok is False
        assert report.culprits == (2,)
        assert report.rebuilt_ok is True  # the rebuilt value itself is fine

    def test_wrong_rebuilt_detected_and_healed(self, stripe):
        code, chunks = stripe
        poisoned = chunks[self.LOST].copy()
        poisoned[500] ^= 0x22
        report = audit_stripe(code, self.LOST, poisoned, self._stored(chunks))
        assert report.ok is False
        assert report.rebuilt_ok is False
        # the surplus pins down the true value: the healing payload
        assert np.array_equal(report.predicted, chunks[self.LOST])

    def test_silent_stored_rot_localized(self, stripe):
        # rot whose digest was re-recorded: stored values disagree with
        # each other and only leave-one-out can name the culprit
        code, chunks = stripe
        stored = self._stored(chunks)
        stored[6][9] ^= 0x10
        report = audit_stripe(code, self.LOST, chunks[self.LOST], stored)
        assert report.ok is False
        assert report.culprits == (6,)
        assert report.localized
        assert report.rebuilt_ok is True

    def test_too_few_clean_chunks_is_unverifiable(self, stripe):
        code, chunks = stripe
        stored = {i: chunks[i] for i in range(K - 1)}
        report = audit_stripe(code, self.LOST, chunks[self.LOST], stored)
        assert report.ok is None
        assert report.culprits == ()

    def test_too_few_clean_with_digest_bad_is_corrupt(self, stripe):
        code, chunks = stripe
        stored = {i: chunks[i] for i in range(K - 1)}
        report = audit_stripe(
            code, self.LOST, chunks[self.LOST], stored, digest_bad=(8,)
        )
        assert report.ok is False
        assert report.culprits == (8,)
