"""Wire corruption: per-slice checksums, hop-local detection, retransmit."""

import numpy as np
import pytest

from repro.faults import FAILED
from repro.obs import MetricsRegistry, Tracer

from .conftest import build_system

pytestmark = pytest.mark.integrity


def repair_with_wire_corruption(duration_s, *, node_pick=2, seed=1):
    tracer, metrics = Tracer(), MetricsRegistry()
    sys_, chunks, loc = build_system(seed=seed, tracer=tracer, metrics=metrics)
    victim = loc.placement[0]
    helper = loc.placement[node_pick]
    requester = 9
    sys_.fail_node(victim)
    sys_.corrupt_wire(helper, duration_s=duration_s, seed=4)
    out = sys_.repair(
        "s0", victim, requester, store=False, on_failure="outcome"
    )
    return sys_, chunks, out, tracer, metrics


class TestWireCorruption:
    def test_transient_corruption_is_retransmitted(self):
        sys_, chunks, out, tracer, metrics = repair_with_wire_corruption(0.002)
        assert out.status != FAILED
        assert out.verified
        assert out.corruption_detected
        assert np.array_equal(out.rebuilt, chunks[0])
        assert metrics.total("repro_integrity_retransmits_total") >= 1
        names = set(tracer.event_names())
        assert "integrity.wire_corruption" in names
        assert "integrity.retransmit" in names

    def test_detection_metric_labelled_wire(self):
        _, _, _, _, metrics = repair_with_wire_corruption(0.002)
        assert (
            metrics.get(
                "repro_integrity_corruption_detected_total", kind="wire"
            ).value
            >= 1
        )

    def test_permanent_corruption_fails_explicitly(self):
        # a hop that garbles every slice forever can never deliver; the
        # watchdog must exhaust its attempts with a reason, not hang and
        # not hand over corrupt bytes
        sys_, chunks, out, _, _ = repair_with_wire_corruption(1e9)
        assert out.status == FAILED
        assert out.failure_reason
        assert out.rebuilt is None
        assert out.corruption_detected

    def test_corruption_window_expiry_unblocks(self):
        # the window covers the first attempt only; a retry after it
        # expires sails through
        sys_, chunks, out, _, _ = repair_with_wire_corruption(0.01)
        assert out.status != FAILED
        assert np.array_equal(out.rebuilt, chunks[0])

    def test_clean_repair_reports_no_corruption(self):
        sys_, chunks, loc = build_system()
        sys_.fail_node(loc.placement[0])
        out = sys_.repair("s0", loc.placement[0], 9, store=False)
        assert out.verified and not out.corruption_detected
        assert out.quarantined_chunks == ()

    def test_wire_corruption_outcome_deterministic(self):
        a = repair_with_wire_corruption(0.002)[2]
        b = repair_with_wire_corruption(0.002)[2]
        assert (
            a.status, a.attempts, a.retries, a.elapsed_seconds,
            a.bytes_received,
        ) == (
            b.status, b.attempts, b.retries, b.elapsed_seconds,
            b.bytes_received,
        )

    def test_sender_store_stays_clean(self):
        # corruption happens to the copy in flight, never the store
        sys_, chunks, out, _, _ = repair_with_wire_corruption(0.002)
        assert sys_.nodes[2].store.verify("s0", 2)
        assert np.array_equal(sys_.nodes[2].store.get("s0", 2), chunks[2])
