"""Background scrubber: full detection, budget pacing, heal loop."""

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.integrity import Scrubber
from repro.net import BandwidthSnapshot
from repro.obs import MetricsRegistry, Tracer
from repro.recovery import RecoveryConfig, RecoveryOrchestrator

NUM_NODES = 14
CHUNK = 8 * 1024
N, K = 9, 6

pytestmark = pytest.mark.integrity


def build_fleet(num_stripes=6, *, seed=11, tracer=None, metrics=None):
    sys_ = ClusterSystem(
        NUM_NODES, RSCode(N, K), slice_bytes=4096,
        tracer=tracer, metrics=metrics,
    )
    rng = np.random.default_rng(seed)
    sys_.set_bandwidth(
        BandwidthSnapshot(
            uplink=rng.uniform(300.0, 1000.0, NUM_NODES),
            downlink=rng.uniform(300.0, 1000.0, NUM_NODES),
        )
    )
    payloads = {}
    for s in range(num_stripes):
        data = rng.integers(0, 256, (K, CHUNK), dtype=np.uint8)
        placement = tuple(rng.permutation(NUM_NODES)[:N].tolist())
        sid = f"s{s}"
        sys_.write_stripe(sid, data, placement=placement)
        payloads[sid] = {
            i: sys_.nodes[placement[i]].store.get(sid, i).copy()
            for i in range(N)
        }
    return sys_, payloads


def rot_chunks(sys_, count, *, seed=5):
    """Silently rot `count` distinct stored chunks; return their keys."""
    rng = np.random.default_rng(seed)
    keys = sorted(
        (node, sid, ci)
        for node in range(NUM_NODES)
        for sid, ci in sys_.nodes[node].store.chunk_keys()
    )
    rotted = []
    for idx in rng.permutation(len(keys))[:count]:
        node, sid, ci = keys[idx]
        sys_.nodes[node].store.corrupt(sid, ci, flips=4, seed=int(idx))
        rotted.append((sid, ci, node))
    return sorted(rotted)


class TestDetection:
    def test_scrub_finds_every_rotted_chunk(self):
        sys_, _ = build_fleet()
        rotted = rot_chunks(sys_, 5)
        report = Scrubber(sys_, bandwidth_fraction=0.05).run()
        assert sorted(report.corrupt) == rotted
        for sid, ci, _node in rotted:
            assert sys_.master.is_quarantined(sid, ci)

    def test_clean_fleet_scrubs_clean(self):
        sys_, _ = build_fleet()
        report = Scrubber(sys_).run()
        assert report.corrupt == []
        assert report.chunks_scanned == 6 * N
        assert report.bytes_scanned == 6 * N * CHUNK

    def test_dead_node_chunks_are_skipped(self):
        sys_, _ = build_fleet()
        dead = 3
        held = len(sys_.nodes[dead].store.chunk_keys())
        sys_.fail_node(dead)
        report = Scrubber(sys_).run()
        assert report.skipped == held
        assert report.chunks_scanned == 6 * N - held

    def test_scrub_metrics(self):
        metrics = MetricsRegistry()
        sys_, _ = build_fleet(metrics=metrics)
        rot_chunks(sys_, 3)
        Scrubber(sys_).run()
        assert (
            metrics.get(
                "repro_integrity_scrub_chunks_total", result="corrupt"
            ).value
            == 3
        )
        assert (
            metrics.get(
                "repro_integrity_scrub_chunks_total", result="ok"
            ).value
            == 6 * N - 3
        )
        assert metrics.total("repro_integrity_scrub_bytes_total") == (
            6 * N * CHUNK
        )


class TestBudget:
    def test_half_budget_takes_twice_as_long(self):
        def elapsed(fraction):
            sys_, _ = build_fleet()
            return Scrubber(sys_, bandwidth_fraction=fraction).run().elapsed_s

        slow, fast = elapsed(0.02), elapsed(0.04)
        assert slow == pytest.approx(2.0 * fast, rel=1e-6)

    def test_bandwidth_fraction_validated(self):
        sys_, _ = build_fleet()
        with pytest.raises(ValueError):
            Scrubber(sys_, bandwidth_fraction=0.0)
        with pytest.raises(ValueError):
            Scrubber(sys_, bandwidth_fraction=1.5)

    def test_scrub_is_deterministic(self):
        def run():
            sys_, _ = build_fleet()
            rot_chunks(sys_, 4)
            r = Scrubber(sys_, bandwidth_fraction=0.03).run()
            return (r.elapsed_s, r.chunks_scanned, sorted(r.corrupt))

        assert run() == run()


class TestHealLoop:
    def test_scrub_feeds_orchestrator_and_fleet_heals(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        sys_, payloads = build_fleet(tracer=tracer, metrics=metrics)
        rotted = rot_chunks(sys_, 4)
        orch = RecoveryOrchestrator(sys_, RecoveryConfig(budget_fraction=0.6))
        orch.start()
        scrubber = Scrubber(
            sys_, bandwidth_fraction=0.05, orchestrator=orch
        )
        scrubber.start()
        sys_.events.run()
        report = scrubber.report
        assert sorted(report.corrupt) == rotted

        repaired = {r.stripe_id: r for r in orch.records}
        for sid, ci, node in rotted:
            rec = repaired[sid]
            assert rec.status == "completed" and rec.verified
            # the rotten copy was replaced with the true bytes and the
            # quarantine mark lifted
            assert not sys_.master.is_quarantined(sid, ci)
            loc = sys_.master.stripe(sid)
            holder = loc.placement[ci]
            assert sys_.nodes[holder].store.verify(sid, ci)
            assert np.array_equal(
                sys_.nodes[holder].store.get(sid, ci), payloads[sid][ci]
            )
        assert metrics.total("repro_recovery_enqueued_total") == len(
            {sid for sid, _, _ in rotted}
        )
        assert "recovery.scrub_enqueue" in set(tracer.event_names())

    def test_enqueue_dedupes_stripes(self):
        sys_, _ = build_fleet()
        orch = RecoveryOrchestrator(sys_)
        sys_.quarantine_chunk("s2", 1, kind="scrub")
        assert orch.enqueue_stripe("s2")
        assert not orch.enqueue_stripe("s2")  # already queued

    def test_enqueue_rejects_healthy_stripe(self):
        sys_, _ = build_fleet()
        orch = RecoveryOrchestrator(sys_)
        assert not orch.enqueue_stripe("s0")
