"""Silent-corruption faults: store hooks, dataclasses, and the injector."""

import numpy as np
import pytest

from repro.cluster.chunkstore import ChunkStore
from repro.faults import (
    BitRot,
    Crash,
    FaultInjector,
    TornWrite,
    WireCorruption,
)

from .conftest import build_system

pytestmark = pytest.mark.integrity


class TestChunkStoreDigests:
    def _store(self, nbytes=4096, seed=0):
        store = ChunkStore()
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 256, nbytes, dtype=np.uint8)
        store.put("s", 0, payload)
        return store, payload

    def test_put_records_digest_and_verify_passes(self):
        store, _ = self._store()
        assert store.verify("s", 0)
        assert store.digest("s", 0) == store.digest("s", 0)

    def test_corrupt_breaks_verify_but_not_digest_record(self):
        store, _ = self._store()
        recorded = store.digest("s", 0)
        flipped = store.corrupt("s", 0, flips=8, seed=3)
        assert flipped == 8
        assert not store.verify("s", 0)
        assert store.digest("s", 0) == recorded  # record still the intent

    def test_corrupt_with_fix_digest_hides_from_verify(self):
        store, payload = self._store()
        store.corrupt("s", 0, flips=8, seed=3, fix_digest=True)
        assert store.verify("s", 0)  # digest agrees with the rotten bytes
        assert not np.array_equal(store.get("s", 0), payload)

    def test_corrupt_is_deterministic_per_seed(self):
        a, _ = self._store()
        b, _ = self._store()
        a.corrupt("s", 0, flips=16, seed=9)
        b.corrupt("s", 0, flips=16, seed=9)
        assert np.array_equal(a.get("s", 0), b.get("s", 0))

    def test_torn_write_garbles_tail_after_digest(self):
        store = ChunkStore()
        rng = np.random.default_rng(1)
        payload = rng.integers(0, 256, 4096, dtype=np.uint8)
        store.arm_torn_write(tail_fraction=0.25, seed=5)
        store.put("s", 0, payload)
        stored = store.get("s", 0)
        assert not store.verify("s", 0)  # digest covers the intent
        assert np.array_equal(stored[:3072], payload[:3072])  # head intact
        assert not np.array_equal(stored[3072:], payload[3072:])

    def test_torn_write_is_one_shot(self):
        store = ChunkStore()
        rng = np.random.default_rng(2)
        store.arm_torn_write(seed=5)
        store.put("s", 0, rng.integers(0, 256, 1024, dtype=np.uint8))
        store.put("s", 1, rng.integers(0, 256, 1024, dtype=np.uint8))
        assert not store.verify("s", 0)
        assert store.verify("s", 1)  # the tear was consumed

    def test_arm_torn_write_validates_fraction(self):
        store = ChunkStore()
        with pytest.raises(ValueError):
            store.arm_torn_write(tail_fraction=0.0)
        with pytest.raises(ValueError):
            store.arm_torn_write(tail_fraction=1.5)

    def test_delete_drops_digest(self):
        store, _ = self._store()
        store.delete("s", 0)
        with pytest.raises(KeyError):
            store.digest("s", 0)

    def test_chunk_keys_sorted(self):
        store = ChunkStore()
        rng = np.random.default_rng(3)
        for sid, ci in (("b", 1), ("a", 2), ("a", 0)):
            store.put(sid, ci, rng.integers(0, 256, 64, dtype=np.uint8))
        assert store.chunk_keys() == [("a", 0), ("a", 2), ("b", 1)]


class TestFaultDataclasses:
    def test_bitrot_validates_flips(self):
        with pytest.raises(ValueError):
            BitRot(node=0, time=0.0, flips=0)

    def test_torn_write_validates_fraction(self):
        with pytest.raises(ValueError):
            TornWrite(node=0, time=0.0, tail_fraction=0.0)

    def test_wire_corruption_validates_duration(self):
        with pytest.raises(ValueError):
            WireCorruption(node=0, time=0.0, duration_s=0.0)


class TestSystemHooks:
    def test_corrupt_chunk_picks_deterministic_victim(self):
        sys_a, _, _ = build_system()
        sys_b, _, _ = build_system()
        assert sys_a.corrupt_chunk(3, seed=17)
        assert sys_b.corrupt_chunk(3, seed=17)
        assert np.array_equal(
            sys_a.nodes[3].store.get("s0", 3), sys_b.nodes[3].store.get("s0", 3)
        )

    def test_corrupt_chunk_noop_on_dead_node(self):
        sys_, chunks, _ = build_system()
        sys_.fail_node(3)
        assert not sys_.corrupt_chunk(3)
        # the dead node's store stays pristine: it is the test oracle
        assert np.array_equal(sys_.nodes[3].store.get("s0", 3), chunks[3])

    def test_corrupt_chunk_noop_on_empty_node(self):
        sys_, _, _ = build_system()
        assert not sys_.corrupt_chunk(13)  # holds no chunk

    def test_injector_applies_corruption_faults(self):
        sys_, chunks, _ = build_system()
        injector = FaultInjector(
            [
                BitRot(node=2, time=0.0, stripe_id="s0", chunk_index=2,
                       flips=4, seed=1),
                TornWrite(node=9, time=0.0, seed=2),
                WireCorruption(node=5, time=0.0, duration_s=0.001, seed=3),
            ]
        )
        injector.arm(sys_)
        sys_.events.run()
        assert len(injector.log.fired) == 3
        assert not sys_.nodes[2].store.verify("s0", 2)
        assert sys_.nodes[5].wire_corrupt_until > 0.0


class TestRandomSchedule:
    def test_legacy_schedules_never_draw_corruption(self):
        corruption_types = (BitRot, TornWrite, WireCorruption)
        for seed in range(50):
            inj = FaultInjector.random_schedule(
                seed, nodes=range(10), horizon_s=0.05, max_faults=5
            )
            assert not any(
                isinstance(f, corruption_types) for f in inj.faults
            )

    def test_corruption_flag_adds_new_kinds_somewhere(self):
        corruption_types = (BitRot, TornWrite, WireCorruption)
        drawn = [
            f
            for seed in range(50)
            for f in FaultInjector.random_schedule(
                seed, nodes=range(10), horizon_s=0.05, max_faults=5,
                corruption=True,
            ).faults
            if isinstance(f, corruption_types)
        ]
        assert {type(f) for f in drawn} == set(corruption_types)

    def test_corruption_schedule_deterministic(self):
        a = FaultInjector.random_schedule(
            23, nodes=range(10), horizon_s=0.05, corruption=True
        )
        b = FaultInjector.random_schedule(
            23, nodes=range(10), horizon_s=0.05, corruption=True
        )
        assert a.faults == b.faults

    def test_crash_cap_respected_with_corruption(self):
        for seed in range(30):
            inj = FaultInjector.random_schedule(
                seed, nodes=range(10), horizon_s=0.05, max_faults=6,
                max_crashes=1, corruption=True,
            )
            assert sum(isinstance(f, Crash) for f in inj.faults) <= 1
