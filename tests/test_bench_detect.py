"""Detection-quality harness: smoke run, schema, and the tier-1 gate.

The smoke tier re-runs both scored suites (watchdog fault matrix at
the full chunk size, drift suite at a reduced one) and enforces the
same gate as the committed artefact: the detector-informed watchdog
must mitigate faults strictly faster than the timeout-only arm with
zero false aborts on the clean scenario, and detector-triggered
re-planning must beat never-replanning on every drifting-trace case
while raising zero alarms on a flat trace.  Both suites run entirely
in simulated time, so the numbers — and the gate — are deterministic.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.bench_detect import (
    DRIFT_CASES,
    DRIFT_POLICIES,
    SCHEMA_VERSION,
    WATCHDOG_SCENARIOS,
    run,
)
from benchmarks.common import REPO_ROOT

pytestmark = pytest.mark.detect


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    """One smoke pass per test module (writes outside the repo tree)."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_detect.json"
    report = run(smoke=True, out_path=out)
    return report, out


class TestSchema:
    def test_file_round_trips(self, smoke_report):
        report, path = smoke_report
        assert path.exists()
        assert json.loads(path.read_text()) == json.loads(json.dumps(report))

    def test_top_level_keys(self, smoke_report):
        report, _ = smoke_report
        assert report["benchmark"] == "detect"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is True
        for key in ("watchdog", "drift", "gate"):
            assert key in report

    def test_watchdog_matrix_complete(self, smoke_report):
        report, _ = smoke_report
        scenarios = report["watchdog"]["scenarios"]
        assert set(scenarios) == set(WATCHDOG_SCENARIOS)
        for rows in scenarios.values():
            for arm in ("baseline", "detector"):
                row = rows[arm]
                assert row["status"] in ("completed", "degraded", "failed")
                assert row["elapsed_s"] > 0
        # the clean scenario carries no latency; every fault does
        assert scenarios["clean"]["detector"]["detection_latency_s"] is None
        for name in WATCHDOG_SCENARIOS:
            if name == "clean":
                continue
            for arm in ("baseline", "detector"):
                assert scenarios[name][arm]["detection_latency_s"] > 0

    def test_drift_matrix_complete(self, smoke_report):
        report, _ = smoke_report
        cases = report["drift"]["cases"]
        assert set(cases) == set(DRIFT_CASES)
        for per_policy in cases.values():
            assert set(per_policy) == set(DRIFT_POLICIES)
            for row in per_policy.values():
                assert row["completed"] or row["timed_out"]
                assert row["seconds"] > 0
        # only the detect policy drives re-plans off alarms
        for case in DRIFT_CASES:
            for policy in ("never", "oracle", "interval"):
                assert cases[case][policy]["alarms"] == 0

    def test_detection_latency_recorded(self, smoke_report):
        """The mid-repair helper crash is seen within a few intervals."""
        report, _ = smoke_report
        latency = report["drift"]["dead_helper_detection_latency_s"]
        assert latency is not None
        assert 0 < latency <= 20.0


class TestGate:
    def test_gate_passes_on_fresh_smoke_run(self, smoke_report):
        report, _ = smoke_report
        gate = report["gate"]
        assert gate["detector_beats_timeout"], (
            report["watchdog"]["mean_detection_latency_s"]
        )
        assert gate["zero_false_aborts"]
        assert gate["no_missed_detections"]
        assert gate["detect_beats_never"], {
            case: {p: per[p]["seconds"] for p in ("never", "detect")}
            for case, per in report["drift"]["cases"].items()
        }
        assert gate["zero_flat_alarms"]
        assert gate["pass"] is True

    def test_clean_scenario_identical_across_arms(self, smoke_report):
        """With no fault the detector must be a pure observer."""
        report, _ = smoke_report
        clean = report["watchdog"]["scenarios"]["clean"]
        assert clean["detector"]["detect_aborts"] == 0
        assert clean["detector"]["elapsed_s"] == pytest.approx(
            clean["baseline"]["elapsed_s"], rel=1e-9
        )


class TestCommittedArtifact:
    def test_committed_artifact_matches_schema(self):
        path = REPO_ROOT / "BENCH_detect.json"
        assert path.exists(), "run `python -m benchmarks.bench_detect`"
        report = json.loads(path.read_text())
        assert report["benchmark"] == "detect"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is False
        assert report["gate"]["pass"] is True

    def test_committed_headline_margins(self):
        """The claims the docs cite, re-read from the artefact."""
        report = json.loads((REPO_ROOT / "BENCH_detect.json").read_text())
        latency = report["watchdog"]["mean_detection_latency_s"]
        assert latency["detector"] < 0.5 * latency["baseline"]
        for case, per_policy in report["drift"]["cases"].items():
            assert (
                per_policy["detect"]["seconds"]
                < per_policy["never"]["seconds"]
            ), case

    def test_merges_into_bench_trajectory(self):
        """`repro bench report` picks the artefact up like the others."""
        from repro.analysis import merge_bench_reports, render_bench_trajectory

        report = json.loads((REPO_ROOT / "BENCH_detect.json").read_text())
        merged = merge_bench_reports({"BENCH_detect.json": report})
        (entry,) = merged["reports"]
        assert entry["benchmark"] == "detect"
        metrics = entry["metrics"]
        assert "watchdog.mean_detection_latency_s.detector" in metrics
        assert "gate.pass" in metrics and metrics["gate.pass"] == 1.0
        text = render_bench_trajectory(merged)
        assert "watchdog.mean_detection_latency_s.detector" in text
