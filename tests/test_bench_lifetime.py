"""Durability harness: schema, determinism gate, and theory cross-check.

The gate tier re-runs the committed fixed-seed campaign — one million
stripe-years of (14, 10) against the real orchestrator — and requires
the loss count, stripes lost, and event total to reproduce the
committed ``BENCH_lifetime.json`` *exactly*: every draw in the
campaign comes from a named seeded stream, so a one-count drift means
a stream moved and every published durability number is suspect.  The
cross-check tier requires the Monte-Carlo MTTDL interval to bracket
the closed-form Markov-chain answer, and the sweep tier requires
durability to respond to the repair-speed knob in the right direction.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.bench_lifetime import (
    GATE_EXPECTED,
    GATE_MIN_STRIPE_YEARS_PER_S,
    SCHEMA_VERSION,
    SWEEP_FACTORS,
    run,
)
from benchmarks.common import REPO_ROOT

pytestmark = pytest.mark.lifetime


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    """One smoke pass per test module (writes outside the repo tree)."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_lifetime.json"
    report = run(smoke=True, out_path=out)
    return report, out


class TestSchema:
    def test_file_round_trips(self, smoke_report):
        report, path = smoke_report
        assert path.exists()
        assert json.loads(path.read_text()) == json.loads(json.dumps(report))

    def test_top_level_keys(self, smoke_report):
        report, _ = smoke_report
        assert report["benchmark"] == "lifetime"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is True
        for key in ("gate", "crosscheck", "sweep"):
            assert key in report


class TestGate:
    def test_fixed_seed_campaign_reproduces_exactly(self, smoke_report):
        report, _ = smoke_report
        gate = report["gate"]
        assert gate["matches_expected"]
        for key, value in GATE_EXPECTED.items():
            assert gate[key] == value, key

    def test_million_stripe_years(self, smoke_report):
        report, _ = smoke_report
        assert report["gate"]["stripe_years"] >= 1_000_000

    def test_throughput_floor(self, smoke_report):
        report, _ = smoke_report
        assert (
            report["gate"]["stripe_years_per_s"]
            >= GATE_MIN_STRIPE_YEARS_PER_S
        )

    def test_conservation(self, smoke_report):
        """Whatever was destroyed was either rebuilt or lost for good."""
        gate = smoke_report[0]["gate"]
        assert gate["chunks_destroyed"] > 0
        assert gate["chunks_rebuilt"] <= gate["chunks_destroyed"]

    def test_committed_artifact_matches_contract(self):
        """The artefact in the tree agrees with the in-code contract."""
        committed = json.loads(
            (REPO_ROOT / "BENCH_lifetime.json").read_text()
        )
        for key, value in GATE_EXPECTED.items():
            assert committed["gate"][key] == value, key
        assert committed["config"]["gate_expected"] == GATE_EXPECTED


class TestCrosscheck:
    def test_analytic_mttdl_within_simulated_ci(self, smoke_report):
        report, _ = smoke_report
        cc = report["crosscheck"]
        assert cc["loss_events"] > 0, "regime must actually lose data"
        assert cc["analytic_within_ci"]
        lo, hi = cc["sim_ci_s"]
        assert lo <= cc["analytic_mttdl_s"] <= hi


class TestSweep:
    def test_pipelining_improves_durability(self, smoke_report):
        report, _ = smoke_report
        sweep = report["sweep"]
        assert sweep["pipelining_reduces_losses"]
        fast = sweep[f"pipeline_{SWEEP_FACTORS[0]:g}"]
        slow = sweep[f"pipeline_{SWEEP_FACTORS[-1]:g}"]
        assert fast["losses"] < slow["losses"]
        assert fast["nines_lower"] > slow["nines_lower"]
