"""Library hygiene: ``src/repro`` never prints.

All human-facing output flows through the renderers in
``repro.analysis.reporting`` and is printed by the CLI (``repro.cli``),
which is the single module allowed to call ``print()``.  An AST walk
(not a grep — docstrings legitimately mention ``print(...)``) enforces
it for every other module.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: the CLI is the presentation layer; printing is its job
ALLOWED = {SRC / "cli.py"}


def _print_calls(path: Path) -> list[int]:
    tree = ast.parse(path.read_text(), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def test_library_code_never_prints():
    assert SRC.is_dir()
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        offenders += [f"{path}:{line}" for line in _print_calls(path)]
    assert not offenders, (
        "print() in library code (route output through "
        f"repro.analysis.reporting + the CLI): {offenders}"
    )


def test_lint_actually_detects_print(tmp_path):
    """The lint must not be trivially green: a print() sample trips it."""
    sample = tmp_path / "sample.py"
    sample.write_text('"""print(x) in a docstring is fine."""\nprint(1)\n')
    assert _print_calls(sample) == [2]
