"""Cross-module property-based tests.

These hypothesis suites tie the whole stack together: for arbitrary
bandwidth conditions and code parameters, every registered algorithm
must emit a valid plan, timing must respect universal bounds, and the
core optimality relations must hold.  They are the library's strongest
regression net — any scheduling, validation, or execution change that
breaks an invariant fails here on a shrunk counterexample.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FullRepair, max_pipelined_throughput
from repro.core.optimality import ideal_bound
from repro.net import BandwidthSnapshot, RepairContext, units
from repro.repair import algorithm_names, get_algorithm
from repro.sim import TransferParams, execute, ideal_transfer_seconds
from repro.analysis import plan_utilization


@st.composite
def repair_contexts(draw, min_nodes=5, max_nodes=14, max_k=8):
    """Arbitrary repair instances with mixed congestion."""
    num_nodes = draw(st.integers(min_nodes, max_nodes))
    k = draw(st.integers(2, min(num_nodes - 2, max_k)))
    num_helpers = draw(st.integers(k, num_nodes - 1))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    up = rng.uniform(5.0, 1000.0, num_nodes)
    down = rng.uniform(5.0, 1000.0, num_nodes)
    congested = rng.random(num_nodes) < draw(st.floats(0.0, 0.5))
    up[congested] *= 0.05
    down[rng.random(num_nodes) < 0.2] *= 0.05
    ids = rng.permutation(num_nodes)
    return RepairContext(
        snapshot=BandwidthSnapshot(uplink=up, downlink=down),
        requester=int(ids[0]),
        helpers=tuple(int(x) for x in ids[1 : num_helpers + 1]),
        k=k,
    )


ALL_ALGORITHMS = tuple(algorithm_names())

slow = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestEveryAlgorithmEmitsValidPlans:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    @given(ctx=repair_contexts())
    @slow
    def test_plan_validates(self, name, ctx):
        kwargs = {"max_emulations": 50} if name == "ppt" else {}
        try:
            plan = get_algorithm(name, **kwargs).schedule(ctx)
        except ValueError:
            return  # dead links: a refusal is a legal outcome
        plan.validate()

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    @given(ctx=repair_contexts())
    @slow
    def test_rate_within_ideal_bound(self, name, ctx):
        kwargs = {"max_emulations": 50} if name == "ppt" else {}
        try:
            plan = get_algorithm(name, **kwargs).schedule(ctx)
        except ValueError:
            return
        assert plan.total_rate <= ideal_bound(ctx) * (1 + 1e-6)

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    @given(ctx=repair_contexts())
    @slow
    def test_utilization_ratios_partition(self, name, ctx):
        kwargs = {"max_emulations": 50} if name == "ppt" else {}
        try:
            plan = get_algorithm(name, **kwargs).schedule(ctx)
        except ValueError:
            return
        b = plan_utilization(plan)
        assert 0 <= b.selected_used <= 1
        assert 0 <= b.unselected <= 1
        assert 0 <= b.selected_unused <= 1


class TestFullRepairOptimality:
    @given(ctx=repair_contexts())
    @slow
    def test_dominates_single_pipeline(self, ctx):
        try:
            fr = FullRepair().schedule(ctx).total_rate
        except ValueError:
            return
        for name in ("rp", "pivotrepair", "ppr"):
            try:
                base = get_algorithm(name).schedule(ctx).total_rate
            except ValueError:
                continue
            assert fr >= base * (1 - 1e-9)

    @given(ctx=repair_contexts())
    @slow
    def test_plan_rate_equals_t_max(self, ctx):
        try:
            throughput = max_pipelined_throughput(ctx)
            plan = FullRepair().schedule(ctx)
        except ValueError:
            return
        assert plan.total_rate == pytest.approx(throughput.t_max, rel=1e-4)

    @given(ctx=repair_contexts())
    @slow
    def test_schedule_deterministic(self, ctx):
        fr = FullRepair()
        try:
            a = fr.schedule(ctx)
        except ValueError:
            return
        b = fr.schedule(ctx)
        assert [(p.task_id, p.segment.start, p.segment.stop) for p in a.pipelines] == [
            (p.task_id, p.segment.start, p.segment.stop) for p in b.pipelines
        ]
        assert [
            (e.child, e.parent, e.rate) for p in a.pipelines for e in p.edges
        ] == [(e.child, e.parent, e.rate) for p in b.pipelines for e in p.edges]


class TestExecutionBounds:
    @given(
        ctx=repair_contexts(),
        chunk_mib=st.sampled_from([1, 4, 16, 64]),
        slice_kib=st.sampled_from([4, 64, 512]),
    )
    @slow
    def test_never_beats_ideal_time(self, ctx, chunk_mib, slice_kib):
        try:
            plan = FullRepair().schedule(ctx)
        except ValueError:
            return
        params = TransferParams(
            chunk_bytes=units.mib(chunk_mib), slice_bytes=units.kib(slice_kib)
        )
        measured = execute(plan, params).transfer_seconds
        assert measured >= ideal_transfer_seconds(
            units.mib(chunk_mib), plan.total_rate
        ) * (1 - 1e-9)

    @given(ctx=repair_contexts())
    @slow
    def test_transfer_monotone_in_chunk_size(self, ctx):
        try:
            plan = FullRepair().schedule(ctx)
        except ValueError:
            return
        times = [
            execute(plan, TransferParams(chunk_bytes=units.mib(m))).transfer_seconds
            for m in (4, 16, 64)
        ]
        assert times[0] <= times[1] <= times[2]

    @given(ctx=repair_contexts())
    @slow
    def test_whole_chunk_mode_is_fastest_per_pipeline(self, ctx):
        """slice_bytes=None (no slicing) removes all per-slice overhead
        but also all pipelining; for a depth-1 star both executors agree,
        and slicing can only add overhead terms."""
        try:
            plan = get_algorithm("conventional").schedule(ctx)
        except ValueError:
            return
        chunky = execute(
            plan,
            TransferParams(chunk_bytes=units.mib(8), slice_bytes=None,
                           slice_overhead_s=0.0, compute_s_per_byte=0.0),
        ).transfer_seconds
        sliced = execute(
            plan,
            TransferParams(chunk_bytes=units.mib(8), slice_bytes=units.kib(64)),
        ).transfer_seconds
        assert chunky <= sliced * (1 + 1e-9)
