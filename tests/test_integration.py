"""Full-stack integration: traces -> scheduling -> execution -> bytes.

These tests exercise the complete path a user of the library takes, with
randomised shapes: generate a workload trace, build a cluster, store
data, fail nodes, repair with every algorithm, and cross-check the three
execution views (analytic model, vectorised executor, byte-real cluster)
against each other.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ClusterSystem, RSCode, TransferParams, execute
from repro.repair import algorithm_names, get_algorithm
from repro.workloads import make_trace

cluster_shapes = st.tuples(
    st.sampled_from([(5, 3), (6, 4), (9, 6)]),   # (n, k)
    st.integers(0, 2**31 - 1),                     # seed
    st.sampled_from([1024, 4096, 10_000]),         # chunk bytes
    st.sampled_from([512, 2048]),                  # slice bytes
)

slow = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestClusterRoundTripProperty:
    @pytest.mark.parametrize("algorithm", sorted(algorithm_names()))
    @given(shape=cluster_shapes)
    @slow
    def test_repair_is_byte_exact(self, algorithm, shape):
        (n, k), seed, chunk_bytes, slice_bytes = shape
        rng = np.random.default_rng(seed)
        num_nodes = n + 3
        system = ClusterSystem(
            num_nodes, RSCode(n, k), algorithm=algorithm,
            slice_bytes=slice_bytes,
        )
        trace = make_trace(
            "tpcds", num_nodes=num_nodes, num_snapshots=20,
            seed=seed % 1000,
        )
        system.set_bandwidth(trace.snapshot(int(rng.integers(0, 20))))
        data = rng.integers(0, 256, (k, chunk_bytes), dtype=np.uint8)
        placement = tuple(
            int(x) for x in rng.permutation(num_nodes)[:n]
        )
        system.write_stripe("s", data, placement=placement)
        failed = int(placement[rng.integers(0, n)])
        requester = next(
            i for i in range(num_nodes) if i not in placement
        )
        system.fail_node(failed)
        outcome = system.repair("s", failed_node=failed, requester=requester)
        assert outcome.verified
        assert outcome.elapsed_seconds > 0


class TestThreeViewAgreement:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_executor_vs_cluster_timing(self, seed):
        """Vectorised executor and byte-real cluster agree on FullRepair
        multi-pipeline timing for arbitrary sampled bandwidth."""
        rng = np.random.default_rng(seed)
        num_nodes = 12
        chunk_bytes = 20 * 1024
        slice_bytes = 2048
        system = ClusterSystem(
            num_nodes, RSCode(9, 6), algorithm="fullrepair",
            slice_bytes=slice_bytes, dispatch_latency_s=1e-4,
        )
        trace = make_trace(
            "swim", num_nodes=num_nodes, num_snapshots=30, seed=seed % 997
        )
        system.set_bandwidth(trace.snapshot(int(rng.integers(0, 30))))
        data = rng.integers(0, 256, (6, chunk_bytes), dtype=np.uint8)
        system.write_stripe("s", data, placement=tuple(range(9)))
        system.fail_node(4)
        outcome = system.repair("s", failed_node=4, requester=10)
        params = TransferParams(
            chunk_bytes=chunk_bytes, slice_bytes=slice_bytes,
            slice_overhead_s=200e-6, compute_s_per_byte=1.25e-10,
        )
        expected = execute(outcome.plan, params).transfer_seconds
        got = outcome.elapsed_seconds - 1e-4
        assert got == pytest.approx(expected, rel=0.08)


class TestExperimentToClusterConsistency:
    def test_plan_from_experiment_context_executes_in_cluster(self):
        """Contexts sampled by the experiment harness produce plans the
        cluster can execute verbatim."""
        from repro.analysis import sample_contexts

        trace = make_trace("tpch", num_nodes=13, num_snapshots=200, seed=3)
        ctx = sample_contexts(trace, 9, 6, 1, seed=4)[0]
        plan = get_algorithm("fullrepair").plan(ctx)
        plan.validate()
        # rebuild the same roles inside a cluster
        system = ClusterSystem(13, RSCode(9, 6), slice_bytes=2048)
        system.set_bandwidth(ctx.snapshot)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, (6, 8192), dtype=np.uint8)
        failed = next(
            i for i in range(13)
            if i != ctx.requester and i not in ctx.helpers
        )
        placement = (failed, *ctx.helpers)
        system.write_stripe("s", data, placement=placement)
        system.fail_node(failed)
        outcome = system.repair("s", failed_node=failed, requester=ctx.requester)
        assert outcome.verified
        assert outcome.plan.total_rate == pytest.approx(plan.total_rate, rel=1e-6)
