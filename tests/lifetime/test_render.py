"""Rendering contracts: zero-loss, empty-campaign, and lossy reports."""

import math

import pytest

from repro.analysis import render_lifetime, render_lifetime_sweep
from repro.lifetime import (
    ExponentialProcess,
    LifetimeConfig,
    LossEvent,
    MonteCarloResult,
    run_monte_carlo,
)
from repro.obs.fleet import TDigest

pytestmark = pytest.mark.lifetime


def make_result(**overrides) -> MonteCarloResult:
    """A hand-built reduction so contracts don't need a simulation."""
    base = dict(
        config=LifetimeConfig(n=6, k=4, num_stripes=1000,
                              placement_groups=8, years=2.0),
        trials=2,
        group_years=32.0,
        stripe_years=4000.0,
        loss_events=0,
        stripes_lost=0,
        per_trial_loss_events=(0, 0),
        per_trial_stripes_lost=(0, 0),
        confidence=0.95,
        mttdl_years=math.inf,
        mttdl_ci_years=(8.7, math.inf),
        nines=math.inf,
        nines_ci=(1.1, math.inf),
        exposure_digest=TDigest(),
        below_k_digest=TDigest(),
        post_mortems=(),
        results=(),
    )
    base.update(overrides)
    return MonteCarloResult(**base)


class TestZeroLossContract:
    def test_reports_lower_bound_not_infinity_alone(self):
        text = render_lifetime(make_result())
        assert "no data-loss events observed" in text
        assert "MTTDL > 8.7 group-years" in text
        assert "> 1.10 nines" in text

    def test_real_zero_loss_run_renders(self):
        quiet = LifetimeConfig(
            n=6, k=4, num_stripes=160, placement_groups=16, years=0.5,
            disk_process=ExponentialProcess.from_years(1e6),
        )
        mc = run_monte_carlo(quiet, trials=2)
        text = render_lifetime(mc)
        assert "no data-loss events observed" in text
        assert "inf" in text


class TestEmptyCampaignContract:
    def test_empty_digests_render_without_error(self):
        text = render_lifetime(make_result())
        assert "degraded exposure: no windows recorded" in text
        assert "below-k unavailability: no windows recorded" in text
        assert "post-mortems" not in text


class TestLossyContract:
    @pytest.fixture
    def lossy(self):
        exposure = TDigest()
        exposure.add(3600.0, 10)
        exposure.add(7200.0, 10)
        loss = LossEvent(
            time_s=5.0e6,
            group=3,
            stripe_id="pg-000003",
            stripes=125,
            surviving=3,
            destroyed_disks=(4, 9, 12),
            trigger_level="disk",
            trigger_unit=12,
            recent_failures=((4.9e6, "disk", 4), (5.0e6, "disk", 12)),
            group_state="queued",
            queue_depth=7,
            inflight=4,
            committed_fraction=0.3,
            throttle=0.5,
        )
        return make_result(
            loss_events=3,
            stripes_lost=375,
            per_trial_loss_events=(2, 1),
            per_trial_stripes_lost=(250, 125),
            mttdl_years=10.4,
            mttdl_ci_years=(3.4, 30.1),
            nines=2.0,
            nines_ci=(1.5, 2.5),
            exposure_digest=exposure,
            post_mortems=(loss,),
        )

    def test_headline_and_interval(self, lossy):
        text = render_lifetime(lossy)
        assert "3 loss event(s), 375 stripe(s) lost" in text
        assert "per trial: 2, 1" in text
        assert "10.4" in text and "[     3.4,     30.1]" in text

    def test_post_mortem_shows_trigger_and_orchestrator_state(self, lossy):
        text = render_lifetime(lossy)
        assert "pg-000003: 125 stripe(s)" in text
        assert "trigger disk 12" in text
        assert "group was queued, queue 7, 4 in flight" in text
        assert "throttle x0.50" in text
        assert "failure burst: disk 4@4900000s, disk 12@5000000s" in text

    def test_exposure_percentiles(self, lossy):
        text = render_lifetime(lossy)
        assert "degraded exposure: 20 stripe-window(s)" in text
        assert "p99" in text and "max 2.0 h" in text


class TestSweepRendering:
    def test_table_lists_factors_in_order(self):
        sweep = [
            (1.0, make_result()),
            (10.0, make_result(loss_events=9, stripes_lost=900,
                               mttdl_years=3.5, nines=0.8,
                               per_trial_loss_events=(5, 4),
                               per_trial_stripes_lost=(500, 400))),
        ]
        text = render_lifetime_sweep(sweep)
        lines = text.splitlines()
        assert lines[0] == "durability vs repair speed"
        assert "pipeline_factor" in lines[1]
        assert lines[3].strip().startswith("1 |")
        assert "900" in lines[4]
        assert "inf" in lines[3]
