"""Lifetime processes: sampling contracts and exact truncation."""

import numpy as np
import pytest

from repro.lifetime import (
    ExponentialProcess,
    LifetimeProcess,
    SECONDS_PER_YEAR,
    TraceProcess,
    WeibullProcess,
)

pytestmark = pytest.mark.lifetime


class TestExponential:
    def test_from_years_converts_units(self):
        p = ExponentialProcess.from_years(4.0, mttr_hours=12.0)
        assert p.mttf_s == pytest.approx(4.0 * SECONDS_PER_YEAR)
        assert p.mttr_s == pytest.approx(12.0 * 3600.0)

    def test_sample_mean_matches_mttf(self):
        p = ExponentialProcess(mttf_s=100.0, mttr_s=10.0)
        rng = np.random.default_rng(0)
        samples = [p.sample_lifetime(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.1)

    def test_truncated_draws_stay_inside_any_horizon(self):
        # mass almost entirely past the horizon: exact inverse-CDF
        # truncation still lands inside (no rejection loop to exhaust)
        p = ExponentialProcess(mttf_s=1e9, mttr_s=1.0)
        rng = np.random.default_rng(1)
        for _ in range(200):
            assert 0.0 <= p.truncated_lifetime(rng, 50.0) < 50.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ExponentialProcess(mttf_s=0.0, mttr_s=1.0)
        p = ExponentialProcess(mttf_s=1.0, mttr_s=1.0)
        with pytest.raises(ValueError):
            p.truncated_lifetime(np.random.default_rng(0), 0.0)


class TestWeibull:
    def test_shape_controls_burn_in(self):
        """Infant mortality front-loads mass relative to wear-out."""
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        infant = WeibullProcess(shape=0.5, scale_s=100.0, mttr_s=1.0)
        wearout = WeibullProcess(shape=4.0, scale_s=100.0, mttr_s=1.0)
        early = sum(
            infant.truncated_lifetime(rng_a, 100.0) for _ in range(500)
        )
        late = sum(
            wearout.truncated_lifetime(rng_b, 100.0) for _ in range(500)
        )
        assert early < late

    def test_from_years(self):
        p = WeibullProcess.from_years(1.2, 4.0, mttr_hours=6.0)
        assert p.scale_s == pytest.approx(4.0 * SECONDS_PER_YEAR)
        assert p.mttr_s == pytest.approx(6.0 * 3600.0)


class TestTrace:
    def test_resamples_only_observed_values(self):
        p = TraceProcess(lifetimes_s=(3.0, 7.0), downtimes_s=(1.0, 2.0))
        rng = np.random.default_rng(3)
        assert {p.sample_lifetime(rng) for _ in range(50)} == {3.0, 7.0}
        assert {p.sample_downtime(rng) for _ in range(50)} == {1.0, 2.0}

    def test_truncation_restricts_to_eligible_observations(self):
        p = TraceProcess(lifetimes_s=(3.0, 7.0, 50.0), downtimes_s=(1.0,))
        rng = np.random.default_rng(4)
        draws = {p.truncated_lifetime(rng, 10.0) for _ in range(50)}
        assert draws <= {3.0, 7.0}

    def test_no_eligible_observation_falls_back_to_uniform(self):
        p = TraceProcess(lifetimes_s=(50.0,), downtimes_s=(1.0,))
        rng = np.random.default_rng(5)
        for _ in range(20):
            assert 0.0 <= p.truncated_lifetime(rng, 10.0) < 10.0

    def test_empty_or_nonpositive_traces_rejected(self):
        with pytest.raises(ValueError):
            TraceProcess(lifetimes_s=(), downtimes_s=(1.0,))
        with pytest.raises(ValueError):
            TraceProcess(lifetimes_s=(1.0,), downtimes_s=(0.0,))


class TestBaseClassFallback:
    def test_rejection_sampler_always_terminates(self):
        class Stubborn(LifetimeProcess):
            def sample_lifetime(self, rng):
                return 1e12  # never inside the horizon

            def sample_downtime(self, rng):
                return 1.0

        rng = np.random.default_rng(6)
        t = Stubborn().truncated_lifetime(rng, 5.0)
        assert 0.0 <= t < 5.0
