"""The compact stripe-state table: bitmaps, losses, exposure windows."""

import numpy as np
import pytest

from repro.lifetime import StripeTable

pytestmark = pytest.mark.lifetime


def make_table(num_stripes=10, k=2):
    """(3, 2) stripes in two groups over six disks, no overlap."""
    patterns = np.array([[0, 1, 2], [3, 4, 5]], dtype=np.int32)
    return StripeTable(num_stripes, patterns, k=k)


def no_down():
    return np.zeros(6, dtype=bool)


class TestConstruction:
    def test_blocks_cover_population(self):
        table = make_table(num_stripes=11)
        assert table.group_size(0) + table.group_size(1) == 11
        assert int(table.starts[-1]) == 11

    def test_everything_starts_intact(self):
        table = make_table()
        assert table.surviving(0) == 3
        assert table.surviving_histogram().tolist() == [0, 0, 0, 10]

    def test_duplicate_disk_in_pattern_rejected(self):
        with pytest.raises(ValueError, match="repeats a disk"):
            StripeTable(4, np.array([[0, 0, 1], [2, 3, 4]]), k=2)

    def test_group_ids_round_trip(self):
        table = make_table()
        assert table.group_ids == ("pg-000000", "pg-000001")
        assert table.group_of_id("pg-000001") == 1


class TestDestroyAndRebuild:
    def test_disk_death_clears_one_bit_groupwide(self):
        table = make_table()
        down = no_down()
        down[1] = True
        touched, losses = table.destroy_disk(1, 10.0, down)
        assert touched == [0] and not losses
        assert table.surviving(0) == 2
        assert table.surviving(1) == 3
        assert table.destroyed_slots(0) == ((1, 1),)
        assert table.chunks_destroyed == 1

    def test_second_death_loses_the_group(self):
        table = make_table()
        down = no_down()
        for disk in (0, 1):
            down[disk] = True
            _, losses = table.destroy_disk(disk, float(disk), down)
        assert len(losses) == 1
        loss = losses[0]
        assert loss.group == 0
        assert loss.surviving == 1
        assert loss.stripes == table.group_size(0)
        assert table.lost[0] and not table.lost[1]
        assert table.stripes_lost == table.group_size(0)

    def test_rebuild_relocates_pattern(self):
        table = make_table()
        down = no_down()
        down[2] = True
        table.destroy_disk(2, 1.0, down)
        # rebuild slot 2 onto (recovered) disk 2's replacement slot 5?
        # no — onto a different disk entirely, exercising relocation
        table.rebuild(0, [(2, 5)], 2.0, no_down())
        assert table.surviving(0) == 3
        assert table.promote(0).placement == (0, 1, 5)
        assert 0 in table.groups_on(5)
        assert 0 not in table.groups_on(2)
        assert table.chunks_rebuilt == 1

    def test_rebuild_of_lost_group_rejected(self):
        table = make_table()
        down = no_down()
        for disk in (0, 1):
            down[disk] = True
            table.destroy_disk(disk, 0.0, down)
        with pytest.raises(ValueError, match="was lost"):
            table.rebuild(0, [(0, 5)], 1.0, down)


class TestAvailability:
    def test_available_subtracts_unreachable_intact_chunks(self):
        table = make_table()
        down = no_down()
        down[0] = down[1] = True
        assert table.available(0, down) == 1
        assert table.available(1, down) == 3

    def test_destroyed_chunk_not_double_counted(self):
        table = make_table()
        down = no_down()
        down[0] = True
        table.destroy_disk(0, 0.0, down)
        # chunk 0 is destroyed AND its disk is down: available loses 1
        assert table.available(0, down) == 2


class TestExposureWindows:
    def test_degraded_window_closes_on_rebuild(self):
        table = make_table()
        down = no_down()
        down[0] = True
        table.destroy_disk(0, 100.0, down)
        down[0] = False
        table.rebuild(0, [(0, 0)], 160.0, down)
        digest = table.exposure_digest
        assert digest.count == table.group_size(0)
        assert digest.quantile(0.5) == pytest.approx(60.0)

    def test_transient_outage_opens_below_k_only(self):
        table = make_table()
        down = no_down()
        down[0] = down[1] = True  # 1 reachable < k=2, data intact
        for disk in (0, 1):
            table.touch_disk(disk, 10.0, down)
        down[0] = down[1] = False
        for disk in (0, 1):
            table.touch_disk(disk, 35.0, down)
        assert table.below_k_digest.count == table.group_size(0)
        assert table.below_k_digest.quantile(0.5) == pytest.approx(25.0)
        assert table.exposure_digest.count == 0  # nothing destroyed
        assert not table.loss_events

    def test_finalize_closes_open_windows(self):
        table = make_table()
        down = no_down()
        down[3] = True
        table.destroy_disk(3, 5.0, down)
        table.finalize(25.0, down)
        assert table.exposure_digest.count == table.group_size(1)
        assert table.exposure_digest.quantile(0.9) == pytest.approx(20.0)

    def test_loss_closes_windows_too(self):
        table = make_table()
        down = no_down()
        for t, disk in ((1.0, 0), (4.0, 1)):
            down[disk] = True
            table.destroy_disk(disk, t, down)
        assert table.exposure_digest.count == table.group_size(0)
        table.finalize(100.0, down)
        # the lost group contributes no further windows after death
        assert table.exposure_digest.count == table.group_size(0)


class TestPromotion:
    def test_promote_is_cached_and_demote_drops(self):
        table = make_table()
        stripe = table.promote(0)
        assert table.promote(0) is stripe
        assert table.active_count == 1
        table.demote(0)
        assert table.active_count == 0

    def test_promoted_view_tracks_relocation(self):
        table = make_table()
        stripe = table.promote(1)
        down = no_down()
        down[4] = True
        table.destroy_disk(4, 0.0, down)
        table.rebuild(1, [(1, 2)], 1.0, no_down())
        assert stripe.placement == (3, 2, 5)
        assert stripe.stripes == table.group_size(1)
