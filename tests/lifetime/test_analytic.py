"""Closed-form Markov MTTDL: exact small cases and sanity orderings."""

import pytest

from repro.lifetime import SECONDS_PER_YEAR, markov_mttdl, markov_mttdl_years

pytestmark = pytest.mark.lifetime


class TestExactSmallCases:
    def test_single_redundancy_closed_form(self):
        """r = 1 has the textbook answer ((2n-1)L + M) / (n(n-1)L^2)."""
        n, lam, mu = 5, 1e-4, 1e-2
        expected = ((2 * n - 1) * lam + mu) / (n * (n - 1) * lam * lam)
        assert markov_mttdl(n, n - 1, lam, mu) == pytest.approx(expected)
        # with one failed chunk, serial and independent repair coincide
        assert markov_mttdl(
            n, n - 1, lam, mu, repairs="serial"
        ) == pytest.approx(expected)

    def test_no_repair_reduces_to_pure_death_chain(self):
        """mu -> 0: MTTDL is the sum of exponential stage means."""
        n, k, lam = 4, 2, 1e-3
        expected = sum(1.0 / ((n - i) * lam) for i in range(n - k + 1))
        assert markov_mttdl(n, k, lam, 1e-12) == pytest.approx(
            expected, rel=1e-4
        )


class TestOrderings:
    def test_faster_repair_extends_mttdl(self):
        slow = markov_mttdl(14, 10, 1e-6, 1e-4)
        fast = markov_mttdl(14, 10, 1e-6, 1e-3)
        assert fast > slow

    def test_independent_repair_beats_serial(self):
        serial = markov_mttdl(14, 10, 1e-6, 1e-4, repairs="serial")
        independent = markov_mttdl(14, 10, 1e-6, 1e-4, repairs="independent")
        assert independent > serial

    def test_more_redundancy_extends_mttdl(self):
        assert markov_mttdl(14, 10, 1e-6, 1e-4) > markov_mttdl(
            12, 10, 1e-6, 1e-4
        )


class TestUnits:
    def test_years_wrapper_matches_seconds(self):
        years = markov_mttdl_years(9, 6, mttf_years=4.0, mttr_hours=24.0)
        seconds = markov_mttdl(
            9, 6, 1.0 / (4.0 * SECONDS_PER_YEAR), 1.0 / 86_400.0
        )
        assert years == pytest.approx(seconds / SECONDS_PER_YEAR)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            markov_mttdl(4, 4, 1e-6, 1e-4)
        with pytest.raises(ValueError):
            markov_mttdl(4, 2, -1.0, 1e-4)
        with pytest.raises(ValueError):
            markov_mttdl(4, 2, 1e-6, 1e-4, repairs="psychic")
