"""Hierarchical failure domains: shape, fan-out, placement spread."""

import numpy as np
import pytest

from repro.lifetime import LEVELS, DomainTree
from repro.net.topology import RackTopology

pytestmark = pytest.mark.lifetime


@pytest.fixture
def tree():
    """2 DCs x 3 racks x 2 machines x 2 disks = 24 disks."""
    return DomainTree.uniform(
        dcs=2, racks_per_dc=3, machines_per_rack=2, disks_per_machine=2
    )


class TestShape:
    def test_uniform_counts(self, tree):
        assert tree.num_dcs == 2
        assert tree.num_racks == 6
        assert tree.num_machines == 12
        assert tree.num_disks == 24
        assert [tree.num_domains(level) for level in LEVELS] == [2, 6, 12, 24]

    def test_ancestry_is_consistent(self, tree):
        for disk in range(tree.num_disks):
            machine = tree.domain_of("machine", disk)
            rack = tree.domain_of("rack", disk)
            dc = tree.domain_of("dc", disk)
            assert tree.rack_of[machine] == rack
            assert tree.dc_of[rack] == dc

    def test_invalid_level_rejected(self, tree):
        with pytest.raises(ValueError, match="unknown level"):
            tree.domain_of("pod", 0)

    def test_dangling_references_rejected(self):
        with pytest.raises(ValueError, match="undefined machine"):
            DomainTree(machine_of=(0, 5), rack_of=(0,), dc_of=(0,))


class TestFanOut:
    def test_rack_event_covers_every_member_disk(self, tree):
        """The correlated-failure primitive: one rack -> all its disks."""
        disks = tree.disks_under("rack", 0)
        assert disks.tolist() == [0, 1, 2, 3]
        assert all(tree.domain_of("rack", int(d)) == 0 for d in disks)

    def test_fan_out_partitions_the_fleet(self, tree):
        for level in LEVELS:
            union = sorted(
                int(d)
                for dom in range(tree.num_domains(level))
                for d in tree.disks_under(level, dom)
            )
            assert union == list(range(tree.num_disks))

    def test_unknown_domain_rejected(self, tree):
        with pytest.raises(ValueError, match="no rack domain"):
            tree.disks_under("rack", 99)


class TestSpread:
    def test_max_colocated_counts_worst_domain(self, tree):
        # disks 0 and 1 share a machine; 4 is in the next rack
        assert tree.max_colocated((0, 1, 4), "machine") == 2
        assert tree.max_colocated((0, 1, 4), "rack") == 2
        assert tree.max_colocated((0, 1, 4), "dc") == 3

    def test_check_spread_raises_on_violation(self, tree):
        tree.check_spread((0, 2, 4), "machine", max_per_domain=1)
        with pytest.raises(ValueError, match="machine 0 holds 2"):
            tree.check_spread((0, 1, 4), "machine", max_per_domain=1)

    def test_spread_placements_respect_cap(self, tree):
        patterns = tree.spread_placements(
            16, 6, level="machine", max_per_domain=1, seed=3
        )
        assert patterns.shape == (16, 6)
        for row in patterns:
            assert len(set(row.tolist())) == 6
            tree.check_spread(row, "machine", max_per_domain=1)

    def test_spread_placements_wrap_up_to_cap(self, tree):
        # 8 chunks over 6 racks needs a second sweep at cap 2.
        patterns = tree.spread_placements(
            4, 8, level="rack", max_per_domain=2, seed=0
        )
        for row in patterns:
            assert tree.max_colocated(row, "rack") <= 2

    def test_spread_placements_deterministic(self, tree):
        a = tree.spread_placements(8, 6, seed=7)
        b = tree.spread_placements(8, 6, seed=7)
        assert np.array_equal(a, b)

    def test_impossible_spread_rejected(self, tree):
        with pytest.raises(ValueError, match="cannot place"):
            tree.spread_placements(1, 13, level="machine", max_per_domain=1)


class TestTopologyBridge:
    def test_round_trip_preserves_rack_membership(self, tree):
        topo = tree.to_rack_topology(nic_mbps=1000.0, oversubscription=2.0)
        assert topo.num_nodes == tree.num_disks
        assert list(topo.rack_of) == tree.disk_domains("rack").tolist()
        # 4 disks per rack at 1000 Mbps / 2 oversubscription
        assert topo.trunk_mbps[0] == pytest.approx(2000.0)

    def test_from_rack_topology_lifts_nodes_to_machines(self):
        topo = RackTopology.uniform(8, 4, nic_mbps=1000.0)
        tree = DomainTree.from_rack_topology(topo, disks_per_machine=2)
        assert tree.num_machines == 8
        assert tree.num_disks == 16
        assert tree.domain_of("rack", 0) == topo.rack_of[0]
