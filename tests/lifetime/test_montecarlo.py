"""Monte-Carlo reduction: Poisson intervals, censoring, cross-check."""

import math

import pytest

from repro.lifetime import (
    ExponentialProcess,
    LifetimeConfig,
    SECONDS_PER_YEAR,
    markov_mttdl,
    poisson_rate_ci,
    run_monte_carlo,
    sweep_repair_speed,
)

pytestmark = pytest.mark.lifetime

#: The Markov-regime fleet: (3, 2) groups on disjoint placements with
#: per-chunk exponential failure and rebuild clocks — the simulator
#: implements exactly the birth-death chain the closed form solves.
CROSSCHECK = LifetimeConfig(
    n=3,
    k=2,
    num_stripes=200,
    placement_groups=200,
    years=30_000.0 / SECONDS_PER_YEAR,
    seed=11,
    racks_per_dc=1,
    machines_per_rack=1,
    disks_per_machine=600,
    spread_level="disk",
    patterns=tuple(tuple(range(g * 3, (g + 1) * 3)) for g in range(200)),
    disk_process=ExponentialProcess(mttf_s=2000.0, mttr_s=150.0),
    repair="process",
)


class TestPoissonRateCI:
    def test_zero_events_gives_zero_lower_bound(self):
        lo, hi = poisson_rate_ci(0, 100.0)
        assert lo == 0.0
        assert hi > 0.0

    def test_interval_brackets_the_point_rate(self):
        lo, hi = poisson_rate_ci(10, 100.0)
        assert lo < 10 / 100.0 < hi

    def test_more_events_tightens_relative_width(self):
        lo1, hi1 = poisson_rate_ci(4, 100.0)
        lo2, hi2 = poisson_rate_ci(400, 10_000.0)
        assert (hi2 - lo2) / (400 / 10_000.0) < (hi1 - lo1) / (4 / 100.0)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            poisson_rate_ci(-1, 10.0)
        with pytest.raises(ValueError):
            poisson_rate_ci(1, 0.0)
        with pytest.raises(ValueError):
            poisson_rate_ci(1, 10.0, confidence=1.0)


class TestMarkovCrossCheck:
    def test_simulated_mttdl_brackets_the_closed_form(self):
        """The acceptance gate: Monte-Carlo MTTDL must agree with the
        exact Markov-chain answer within its own confidence interval."""
        mc = run_monte_carlo(CROSSCHECK, trials=6, confidence=0.99)
        analytic_s = markov_mttdl(3, 2, 1.0 / 2000.0, 1.0 / 150.0)
        assert mc.loss_events > 50  # enough statistics to mean anything
        lo_s = mc.mttdl_ci_years[0] * SECONDS_PER_YEAR
        hi_s = mc.mttdl_ci_years[1] * SECONDS_PER_YEAR
        assert lo_s <= analytic_s <= hi_s
        # and the point estimate lands in the right decade
        sim_s = mc.mttdl_years * SECONDS_PER_YEAR
        assert sim_s == pytest.approx(analytic_s, rel=0.5)


class TestReduction:
    @pytest.fixture(scope="class")
    def mc(self):
        return run_monte_carlo(CROSSCHECK, trials=3, confidence=0.95)

    def test_trials_use_consecutive_seeds_deterministically(self, mc):
        again = run_monte_carlo(CROSSCHECK, trials=3, confidence=0.95)
        assert again.per_trial_loss_events == mc.per_trial_loss_events
        assert again.group_years == mc.group_years
        assert [r.config.seed for r in mc.results] == [11, 12, 13]

    def test_exposure_is_loss_censored(self, mc):
        uncensored = 3 * CROSSCHECK.placement_groups * CROSSCHECK.years
        assert 0.0 < mc.group_years < uncensored

    def test_digests_merge_across_trials(self, mc):
        assert mc.exposure_digest.count == sum(
            r.exposure_digest.count for r in mc.results
        )

    def test_post_mortems_are_the_largest_losses(self, mc):
        assert len(mc.post_mortems) <= 5
        sizes = [loss.stripes for loss in mc.post_mortems]
        assert sizes == sorted(sizes, reverse=True)

    def test_nines_map_from_the_rate_interval(self, mc):
        assert mc.loss_events > 0
        rate = mc.loss_events / mc.group_years
        assert mc.nines == pytest.approx(-math.log10(min(rate, 1.0)))
        assert mc.nines_ci[0] <= mc.nines <= mc.nines_ci[1]
        assert not mc.zero_loss

    def test_zero_loss_yields_lower_bounds_not_nan(self):
        quiet = LifetimeConfig(
            n=6,
            k=4,
            num_stripes=160,
            placement_groups=16,
            years=0.5,
            disk_process=ExponentialProcess.from_years(1e6),
        )
        mc = run_monte_carlo(quiet, trials=2)
        assert mc.zero_loss
        assert mc.mttdl_years == math.inf
        assert mc.nines == math.inf
        assert 0.0 < mc.mttdl_ci_years[0] < math.inf
        assert mc.mttdl_ci_years[1] == math.inf
        assert 0.0 < mc.nines_ci[0] < math.inf

    def test_trials_must_be_positive(self):
        with pytest.raises(ValueError):
            run_monte_carlo(CROSSCHECK, trials=0)


class TestSweep:
    def test_sweep_pairs_factors_with_results(self):
        small = LifetimeConfig(
            n=6,
            k=5,
            num_stripes=400,
            placement_groups=8,
            years=100_000.0 / SECONDS_PER_YEAR,
            seed=3,
            disks_per_machine=4,
            disk_process=ExponentialProcess(mttf_s=20_000.0, mttr_s=3600.0),
        )
        sweep = sweep_repair_speed(small, (1.0, 25.0), trials=2)
        assert [factor for factor, _ in sweep] == [1.0, 25.0]
        fast, slow = sweep[0][1], sweep[1][1]
        # slower repair can only hurt: weakly more losses, never fewer
        assert slow.loss_events >= fast.loss_events
