"""Campaign driver: correlated fan-out, conservation, determinism."""

import dataclasses

import pytest

from repro.lifetime import (
    ExponentialProcess,
    LifetimeConfig,
    RepairModel,
    SECONDS_PER_YEAR,
    run_campaign,
    with_pipeline_factor,
)

pytestmark = pytest.mark.lifetime


def seconds(s: float) -> float:
    """Config horizons are in years; tests think in seconds."""
    return s / SECONDS_PER_YEAR


QUIET_DISKS = ExponentialProcess(mttf_s=1e15, mttr_s=3600.0)


def small_config(**overrides) -> LifetimeConfig:
    base = dict(
        n=6,
        k=4,
        num_stripes=2000,
        placement_groups=8,
        years=0.25,
        seed=5,
        disks_per_machine=4,
        disk_process=ExponentialProcess.from_years(0.5, mttr_hours=12.0),
        repair_model=RepairModel(chunk_mib=16.0, node_mbps=1000.0),
    )
    base.update(overrides)
    return LifetimeConfig(**base)


class TestRackFanOut:
    def test_rack_outage_blocks_reads_without_destroying_data(self):
        """One rack event fans out to every disk underneath: enough
        chunks go unreachable at once to open below-k windows, yet no
        chunk data is destroyed and nothing is permanently lost."""
        config = small_config(
            racks_per_dc=2,  # 6 chunks over 2 racks -> >= 3 behind one
            years=seconds(20_000.0),
            disk_process=QUIET_DISKS,
            rack_process=ExponentialProcess(mttf_s=4000.0, mttr_s=1500.0),
        )
        result = run_campaign(config)
        assert result.failures.get("rack", 0) > 0
        assert result.chunks_destroyed == 0
        assert result.stripes_lost == 0 and not result.loss_events
        assert result.below_k_digest.count > 0
        assert result.exposure_digest.count == 0

    def test_machine_outage_touches_only_its_disks(self):
        config = small_config(
            years=seconds(20_000.0),
            disk_process=QUIET_DISKS,
            machine_process=ExponentialProcess(mttf_s=5000.0, mttr_s=600.0),
        )
        result = run_campaign(config)
        assert result.failures.get("machine", 0) > 0
        # transient outages never destroy data or lose stripes; only
        # availability windows (from overlapping outages) may open
        assert result.chunks_destroyed == 0
        assert result.exposure_digest.count == 0
        assert result.stripes_lost == 0 and not result.loss_events


class TestOrchestratedConservation:
    def test_every_destroyed_chunk_is_rebuilt_when_nothing_is_lost(self):
        result = run_campaign(small_config())
        assert result.failures.get("disk", 0) > 0
        assert result.chunks_destroyed > 0
        assert not result.loss_events
        assert result.chunks_rebuilt == result.chunks_destroyed
        assert result.repairs_dispatched > 0
        # fully repaired fleet: every stripe back to n intact chunks
        hist = result.surviving_histogram
        assert hist[-1] == config_stripes(result)
        assert result.ticks > 0

    def test_placement_spread_respected_by_generated_patterns(self):
        config = small_config()
        result = run_campaign(config)
        tree = config.build_tree()
        # initial patterns honour the spread policy (relocations during
        # repair may fall back, counted separately)
        patterns = tree.spread_placements(
            config.placement_groups,
            config.n,
            level=config.spread_level,
            max_per_domain=config.max_per_domain,
            seed=config.seed,
        )
        for row in patterns:
            tree.check_spread(
                row, config.spread_level,
                max_per_domain=config.max_per_domain,
            )
        assert result.spread_fallbacks >= 0


def config_stripes(result) -> int:
    return result.config.num_stripes - result.stripes_lost


class TestDeterminism:
    def test_same_seed_reproduces_every_counter(self):
        config = small_config(machine_process=ExponentialProcess.from_years(
            0.5, mttr_hours=4.0
        ))
        a, b = run_campaign(config), run_campaign(config)
        for field in (
            "failures", "chunks_destroyed", "chunks_rebuilt",
            "repairs_dispatched", "stripes_lost", "events_executed",
            "requeues", "skipped", "ticks",
        ):
            assert getattr(a, field) == getattr(b, field), field
        assert a.exposure_digest.count == b.exposure_digest.count
        assert [e.time_s for e in a.loss_events] == [
            e.time_s for e in b.loss_events
        ]

    def test_different_seeds_diverge(self):
        a = run_campaign(small_config(seed=5))
        b = run_campaign(small_config(seed=6))
        assert a.events_executed != b.events_executed


class TestLossPostMortems:
    @pytest.fixture(scope="class")
    def lossy(self):
        # r = 1 with fast re-failure and slow repair: losses guaranteed
        return run_campaign(
            small_config(
                n=6,
                k=5,
                years=seconds(400_000.0),
                disk_process=ExponentialProcess(
                    mttf_s=20_000.0, mttr_s=3600.0
                ),
                repair_model=RepairModel(
                    chunk_mib=64.0, node_mbps=10.0, pipeline_factor=5.0
                ),
                seed=3,
            )
        )

    def test_losses_detected_and_ledgered(self, lossy):
        assert lossy.loss_events
        assert lossy.stripes_lost == sum(
            e.stripes for e in lossy.loss_events
        )

    def test_post_mortem_captures_trigger_and_orchestrator(self, lossy):
        for loss in lossy.loss_events:
            assert loss.trigger_level == "disk"
            assert loss.surviving < 5
            assert loss.recent_failures  # the failure burst context
            assert loss.group_state in (
                "in-flight", "queued", "dead-letter", "idle", "untracked"
            )
            assert 0.0 <= loss.committed_fraction <= 1.0
            assert 0.0 < loss.time_years <= lossy.config.years

    def test_lost_groups_leave_the_live_population(self, lossy):
        # lost stripes keep their sub-k bitmap forever
        hist = lossy.surviving_histogram
        assert sum(hist[:5]) == lossy.stripes_lost


class TestRepairSpeedKnob:
    def test_pipeline_factor_changes_only_the_repair_model(self):
        base = small_config()
        fast = with_pipeline_factor(base, 1.0)
        slow = with_pipeline_factor(base, 10.0)
        assert slow.repair_model.pipeline_factor == 10.0
        assert dataclasses.replace(
            slow, repair_model=base.repair_model
        ) == base
        assert fast.seed == slow.seed

    def test_slower_repair_weakly_increases_exposure(self):
        base = small_config(seed=9)
        fast = run_campaign(with_pipeline_factor(base, 1.0))
        slow = run_campaign(with_pipeline_factor(base, 20.0))
        assert slow.exposure_digest.quantile(0.9) >= fast.exposure_digest.quantile(0.9)


class TestValidation:
    def test_bad_code_rejected(self):
        with pytest.raises(ValueError):
            LifetimeConfig(n=4, k=4)

    def test_bad_repair_mode_rejected(self):
        with pytest.raises(ValueError):
            LifetimeConfig(repair="telekinesis")

    def test_patterns_must_fit_the_tree(self):
        with pytest.raises(ValueError, match="outside the tree"):
            run_campaign(
                small_config(
                    num_stripes=8,
                    placement_groups=1,
                    patterns=((0, 1, 2, 3, 4, 999),),
                )
            )
