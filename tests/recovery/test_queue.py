"""RepairQueue: exposure-first ordering, re-sorting, requeues."""

import pytest

from repro.recovery import RepairQueue

pytestmark = pytest.mark.recovery


def drain(q):
    out = []
    while True:
        t = q.pop()
        if t is None:
            return out
        out.append(t.stripe_id)


class TestOrdering:
    def test_exposure_beats_age(self):
        q = RepairQueue()
        q.push("old-single", now=0.0, exposure=1)
        q.push("new-double", now=5.0, exposure=2)
        assert drain(q) == ["new-double", "old-single"]

    def test_age_breaks_ties_within_class(self):
        q = RepairQueue()
        q.push("b", now=1.0, exposure=1)
        q.push("a", now=0.0, exposure=1)
        q.push("c", now=2.0, exposure=1)
        assert drain(q) == ["a", "b", "c"]

    def test_sequence_breaks_exact_ties(self):
        q = RepairQueue()
        for name in ("x", "y", "z"):
            q.push(name, now=0.0, exposure=1)
        assert drain(q) == ["x", "y", "z"]

    def test_stripe_ids_previews_priority_order(self):
        q = RepairQueue()
        q.push("s1", now=0.0, exposure=1)
        q.push("s2", now=1.0, exposure=3)
        q.push("s3", now=2.0, exposure=2)
        assert q.stripe_ids() == ["s2", "s3", "s1"]
        assert len(q) == 3  # non-destructive


class TestMutation:
    def test_repush_bumps_exposure_but_keeps_age(self):
        q = RepairQueue()
        q.push("a", now=0.0, exposure=1)
        q.push("b", now=1.0, exposure=1)
        ticket = q.push("b", now=9.0, exposure=2)
        assert ticket.enqueued_at == 1.0
        assert drain(q) == ["b", "a"]

    def test_reprioritise_resorts_and_drops_healed(self):
        q = RepairQueue()
        q.push("healed", now=0.0, exposure=1)
        q.push("single", now=1.0, exposure=1)
        q.push("double", now=2.0, exposure=1)
        exposures = {"healed": 0, "single": 1, "double": 2}
        q.reprioritise(lambda sid: exposures[sid])
        assert drain(q) == ["double", "single"]

    def test_requeue_preserves_age_and_attempts(self):
        q = RepairQueue()
        q.push("a", now=0.0, exposure=1)
        ticket = q.pop()
        ticket.attempts = 2
        q.requeue(ticket, exposure=2)
        back = q.pop()
        assert back.attempts == 2
        assert back.enqueued_at == 0.0
        assert back.exposure == 2

    def test_requeue_of_queued_stripe_rejected(self):
        q = RepairQueue()
        q.push("a", now=0.0, exposure=1)
        ticket = q.pop()
        q.push("a", now=1.0, exposure=1)
        with pytest.raises(ValueError):
            q.requeue(ticket, exposure=1)

    def test_discard(self):
        q = RepairQueue()
        q.push("a", now=0.0, exposure=1)
        assert q.discard("a")
        assert not q.discard("a")
        assert q.pop() is None

    def test_oldest_age(self):
        q = RepairQueue()
        assert q.oldest_age(5.0) == 0.0
        q.push("a", now=1.0, exposure=1)
        q.push("b", now=3.0, exposure=2)
        assert q.oldest_age(5.0) == pytest.approx(4.0)

    def test_contains(self):
        q = RepairQueue()
        q.push("a", now=0.0, exposure=1)
        assert "a" in q and "b" not in q
