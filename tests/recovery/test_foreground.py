"""Foreground traffic under recovery: correctness, contention, coexistence."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.faults import FAILED
from repro.net import BandwidthSnapshot
from repro.recovery import (
    ForegroundTraffic,
    RecoveryConfig,
    RecoveryOrchestrator,
    run_recovery_scenario,
)

pytestmark = pytest.mark.recovery


def make_system(num_nodes=8, n=4, k=2, chunk=4096, mbps=500.0, seed=0):
    sys_ = ClusterSystem(num_nodes, RSCode(n, k), slice_bytes=2048)
    sys_.set_bandwidth(BandwidthSnapshot.uniform(num_nodes, mbps))
    rng = np.random.default_rng(seed)
    payloads = {}

    def write(sid, placement):
        data = rng.integers(0, 256, (k, chunk), dtype=np.uint8)
        sys_.write_stripe(sid, data, placement=placement)
        payloads[sid] = data

    return sys_, write, payloads


def run_two_loss(with_read):
    """Two stripes lost on node 0; optionally a degraded read mid-recovery."""
    sys_, write, payloads = make_system()
    write("a", (0, 4, 5, 6))
    write("b", (0, 5, 6, 7))
    orch = RecoveryOrchestrator(
        sys_, RecoveryConfig(max_concurrent=1, budget_fraction=0.3)
    )
    orch.start()
    sys_.events.schedule(0.001, lambda: sys_.fail_node(0))
    outcomes = []
    if with_read:
        # while "a" is in flight and "b" still queued, a client reads
        # the lost chunk of "b" through the real repair machinery
        sys_.events.schedule(
            0.0015,
            lambda: sys_.repair_async(
                "b", 0, requester=2, store=False,
                bandwidth_scale=0.1, on_done=outcomes.append,
            ),
        )
    sys_.events.run()
    return sys_, orch, payloads, outcomes


class TestDegradedReadMidRecovery:
    def test_degraded_read_returns_correct_bytes(self):
        sys_, orch, payloads, outcomes = run_two_loss(with_read=True)
        assert len(outcomes) == 1
        out = outcomes[0]
        assert out.verified
        # node 0 held chunk 0 of "b" (a data chunk, k=2)
        assert np.array_equal(out.rebuilt, payloads["b"][0])
        # store=False: the read did not heal the stripe behind the
        # orchestrator's back — recovery itself repaired both stripes
        repaired = {r.stripe_id for r in orch.records if r.status != FAILED}
        assert repaired == {"a", "b"}
        assert all(r.verified for r in orch.records)

    def test_read_traffic_is_accounted(self):
        quiet = run_two_loss(with_read=False)[0]
        busy = run_two_loss(with_read=True)[0]
        assert busy.traffic_bytes > quiet.traffic_bytes

    def test_read_does_not_perturb_recovery_schedule(self):
        """The event queues interleave without changing repair outcomes."""

        def fingerprint(orch):
            return [
                (r.stripe_id, r.status, r.verified, r.admitted_at,
                 r.finished_at, r.share)
                for r in orch.records
            ]

        baseline = fingerprint(run_two_loss(with_read=False)[1])
        with_read = fingerprint(run_two_loss(with_read=True)[1])
        assert with_read == baseline


class TestHealthyLatencyContention:
    def test_committed_fraction_inflates_latency(self):
        def p_latency(orchestrator):
            sys_, write, _ = make_system()
            write("s0", (0, 1, 2, 3))
            fg = ForegroundTraffic(
                sys_, ["s0"], num_reads=10, period_s=0.001,
                seed=3, orchestrator=orchestrator,
            )
            fg.start()
            sys_.events.run()
            assert fg.done and len(fg.reads) == 10
            return [r.latency_s for r in fg.reads]

        free = p_latency(None)
        # half the bandwidth committed to repairs -> latency doubles
        contended = p_latency(SimpleNamespace(committed_fraction=0.5))
        for a, b in zip(free, contended):
            assert b == pytest.approx(2.0 * a)

    def test_no_live_reader_fails_cleanly(self):
        sys_, write, _ = make_system(num_nodes=5, n=4, k=2)
        write("s0", (0, 1, 2, 3))
        sys_.fail_node(4)
        sys_.fail_node(0)
        fg = ForegroundTraffic(sys_, ["s0"], num_reads=6, seed=0)
        fg.start()
        sys_.events.run()
        degraded = [r for r in fg.reads if r.degraded]
        assert degraded  # chunk 0 reads hit the dead node eventually
        assert all(not r.ok for r in degraded)
        assert all(
            r.failure_reason == "no live node outside the placement"
            for r in degraded
        )


class TestScenarioCoexistence:
    def test_degraded_reads_in_scenario_are_byte_exact(self):
        # big chunks + a tight budget keep the dead node exposed long
        # enough for the read stream to hit lost chunks
        sc = run_recovery_scenario(
            num_stripes=12,
            foreground_reads=150,
            foreground_period_s=0.0005,
            chunk_bytes=65536,
            budget_fraction=0.2,
            kills=((0, 0.001),),
            slo_latency_multiple=None,
        )
        degraded_ok = [
            r for r in sc.foreground.reads if r.degraded and r.ok
        ]
        assert degraded_ok, "scenario produced no degraded reads"
        for read in degraded_ok:
            expected = sc.payloads[read.stripe_id][read.chunk_index]
            assert np.array_equal(read.payload, expected)
        # foreground and recovery both finished on the same event queue
        assert sc.foreground.done
        assert sc.orchestrator.drained_at is not None
        summary = sc.foreground.summary()
        assert summary["ok"] == summary["recorded"] == 150
        assert summary["bytes"] == 150 * 65536
