"""SLO-coupled throttle: breach shrinks repair budget, recovery restores it."""

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.net import BandwidthSnapshot
from repro.obs import FleetAggregator, MetricsRegistry, SLOEngine, Tracer
from repro.obs.slo import parse_rules
from repro.recovery import RecoveryConfig, RecoveryOrchestrator

pytestmark = [pytest.mark.recovery, pytest.mark.slo]

LATENCY_METRIC = "repro_foreground_latency_seconds"


def build(num_stripes=12, chunk=256 * 1024):
    tracer = Tracer()
    metrics = MetricsRegistry()
    fleet = FleetAggregator(window_s=0.03, buckets=6)
    sys_ = ClusterSystem(
        12, RSCode(6, 4), tracer=tracer, metrics=metrics, fleet=fleet
    )
    sys_.set_bandwidth(BandwidthSnapshot.uniform(12, 500.0))
    rng = np.random.default_rng(3)
    for s in range(num_stripes):
        data = rng.integers(0, 256, (4, chunk), dtype=np.uint8)
        sys_.write_stripe(
            f"s{s:02d}", data, placement=tuple((s + j) % 12 for j in range(6))
        )
    slo = SLOEngine(
        fleet=fleet,
        rules=parse_rules([f"p95 {LATENCY_METRIC} < 0.1"]),
        tracer=tracer,
        metrics=metrics,
    )
    orch = RecoveryOrchestrator(
        sys_,
        RecoveryConfig(
            budget_fraction=0.6,
            max_concurrent=2,
            tick_s=0.005,
            throttle_shrink=0.5,
            throttle_restore=2.0,
            throttle_floor=0.1,
        ),
        slo=slo,
    )
    return sys_, fleet, slo, orch, tracer, metrics


class TestThrottle:
    def test_breach_shrinks_budget_and_recovery_restores_it(self):
        sys_, fleet, slo, orch, tracer, metrics = build()
        # foreground latency: terrible until 40ms, healthy afterwards
        for i in range(20):
            sys_.events.schedule_at(
                0.002 + i * 0.002, lambda: fleet.observe(LATENCY_METRIC, 1.0)
            )
        for i in range(200):
            sys_.events.schedule_at(
                0.050 + i * 0.002, lambda: fleet.observe(LATENCY_METRIC, 0.001)
            )
        orch.start()
        sys_.events.schedule(0.001, lambda: sys_.fail_node(0))
        sys_.events.run()

        # the run must still drain completely, just more slowly
        assert orch.drained_at is not None
        assert not orch.dead_letters
        assert all(r.verified for r in orch.records)

        # breach happened and was recovered, per repro_slo_* metrics
        assert metrics.total("repro_slo_breaches_total") >= 1
        assert metrics.get("repro_slo_ok", rule=slo.rules[0].name).value == 1.0

        # the throttle moved both ways and ended fully restored
        assert orch.throttle_shrinks >= 2
        assert orch.throttle_restores >= 2
        assert orch.throttle == pytest.approx(1.0)
        assert orch.effective_budget() == pytest.approx(0.6)

        # recovery.* span events record the moves
        run_span = tracer.find(kind="recovery")[0]
        moves = [e for e in run_span.events if e.name == "recovery.throttle"]
        directions = [e.attrs["direction"] for e in moves]
        assert "shrink" in directions and "restore" in directions
        # shrink phase precedes the restore phase
        assert directions.index("shrink") < directions.index("restore")
        floor_move = min(e.attrs["throttle"] for e in moves)
        assert floor_move == pytest.approx(0.1)

        # in-flight repair bandwidth measurably shrank: admissions during
        # the breach got a fraction of the pre-breach share, and
        # admissions after restore got the full share back
        shares = [
            r.share for r in sorted(orch.records, key=lambda r: r.admitted_at)
        ]
        full_share = 0.6 / 2
        assert shares[0] == pytest.approx(full_share)
        assert min(shares) <= 0.1  # squeezed under the floored budget
        assert shares[-1] >= full_share - 1e-9

    def test_throttle_counter_metrics(self):
        sys_, fleet, slo, orch, tracer, metrics = build()
        for i in range(20):
            sys_.events.schedule_at(
                0.002 + i * 0.002, lambda: fleet.observe(LATENCY_METRIC, 1.0)
            )
        for i in range(200):
            sys_.events.schedule_at(
                0.050 + i * 0.002, lambda: fleet.observe(LATENCY_METRIC, 0.001)
            )
        orch.start()
        sys_.events.schedule(0.001, lambda: sys_.fail_node(0))
        sys_.events.run()
        shrinks = metrics.get(
            "repro_recovery_throttle_total", direction="shrink"
        )
        restores = metrics.get(
            "repro_recovery_throttle_total", direction="restore"
        )
        assert shrinks is not None and shrinks.value >= 2
        assert restores is not None and restores.value >= 2

    def test_no_slo_means_no_throttle(self):
        sys_, fleet, slo, orch, tracer, metrics = build()
        orch.slo = None
        orch.start()
        sys_.events.schedule(0.001, lambda: sys_.fail_node(0))
        sys_.events.run()
        assert orch.throttle == 1.0
        assert orch.throttle_shrinks == 0 and orch.throttle_restores == 0
