"""RecoveryOrchestrator: drain, budget, priority, determinism, dead-letters."""

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.faults import FAILED
from repro.net import BandwidthSnapshot
from repro.recovery import (
    RecoveryConfig,
    RecoveryOrchestrator,
    run_recovery_scenario,
)

pytestmark = pytest.mark.recovery


def make_system(num_nodes=8, n=4, k=2, chunk=4096, mbps=500.0, seed=0):
    sys_ = ClusterSystem(num_nodes, RSCode(n, k), slice_bytes=2048)
    sys_.set_bandwidth(BandwidthSnapshot.uniform(num_nodes, mbps))
    rng = np.random.default_rng(seed)
    payloads = {}

    def write(sid, placement):
        data = rng.integers(0, 256, (k, chunk), dtype=np.uint8)
        sys_.write_stripe(sid, data, placement=placement)
        payloads[sid] = data

    return sys_, write, payloads


class TestPriority:
    def test_double_loss_preempts_older_single_losses(self):
        """A 2-chunk-lost stripe is repaired before older 1-chunk-lost ones."""
        sys_, write, _ = make_system()
        write("single-0", (0, 4, 5, 6))
        write("single-1", (0, 5, 6, 7))
        write("double", (1, 2, 5, 6))
        orch = RecoveryOrchestrator(
            sys_, RecoveryConfig(max_concurrent=1, budget_fraction=0.5)
        )
        orch.start()
        sys_.events.schedule(0.001, lambda: sys_.fail_node(0))
        sys_.events.schedule(0.002, lambda: sys_.fail_node(1))
        sys_.events.schedule(0.003, lambda: sys_.fail_node(2))
        sys_.events.run()
        finished = [r.stripe_id for r in orch.records if r.status != FAILED]
        # single-0 was already in flight when the double loss landed; the
        # freed slot must then go to the exposed stripe, not the older queued
        # single-loss one
        assert finished[0] == "single-0"
        assert finished[1] == "double"
        assert "single-1" in finished[2:]
        assert [r for r in orch.records if r.stripe_id == "double"][0].priority_class == 2
        assert all(r.verified for r in orch.records if r.status != FAILED)

    def test_failure_listener_resorts_queued_backlog(self):
        """A queued single-loss stripe that loses chunk #2 jumps the line."""
        sys_, write, _ = make_system()
        write("a-older", (0, 4, 5, 6))
        write("b-jumper", (0, 1, 5, 6))
        orch = RecoveryOrchestrator(
            sys_, RecoveryConfig(max_concurrent=1, budget_fraction=0.5)
        )
        sys_.fail_node(0)  # both queued as class 1; "a-older" has lower seq
        assert orch.queue.stripe_ids() == ["a-older", "b-jumper"]
        sys_.fail_node(1)  # jumper becomes class 2 while still queued
        assert orch.queue.stripe_ids() == ["b-jumper", "a-older"]


class TestEndToEnd:
    def test_scenario_drains_inside_budget_and_verifies(self):
        sc = run_recovery_scenario(
            num_stripes=18,
            foreground_reads=120,
            chunk_bytes=8192,
            kills=((0, 0.001), (1, 0.004)),
            slo_latency_multiple=None,  # constant budget for the ±10% check
        )
        rep = sc.report
        assert rep.drained_at is not None
        assert rep.queue_depth == 0 and rep.inflight == 0
        assert rep.dead_letters == 0
        assert rep.repaired > 0 and rep.verified == rep.repaired
        # staggered second kill forces at least one multi-chunk repair
        assert any(r.priority_class >= 2 for r in sc.orchestrator.records)
        # budget compliance: committed stays under the cap at every tick
        # and averages within 10% of it while a backlog stands
        for _t, eff, committed, _inflight, _depth in sc.orchestrator.timeline:
            assert committed <= eff + 1e-9
        assert rep.peak_committed <= rep.budget_fraction + 1e-9
        assert rep.backlogged_committed == pytest.approx(
            rep.budget_fraction, rel=0.10
        )
        # every stripe healthy again, bytes byte-identical to the originals
        for sid, data in sc.payloads.items():
            loc = sc.system.master.stripe(sid)
            assert all(sc.system.is_alive(node) for node in loc.placement)
            for ci in range(data.shape[0]):
                assert np.array_equal(sc.system.read_chunk(sid, ci), data[ci])

    def test_scenario_is_deterministic_per_seed(self):
        def fingerprint():
            sc = run_recovery_scenario(
                num_stripes=12,
                foreground_reads=60,
                chunk_bytes=4096,
                kills=((0, 0.001), (1, 0.004)),
            )
            return (
                [
                    (r.stripe_id, r.priority_class, r.admitted_at,
                     r.finished_at, r.share, r.status, r.verified)
                    for r in sc.orchestrator.records
                ],
                [
                    (r.stripe_id, r.degraded, r.latency_s, r.ok)
                    for r in sc.foreground.reads
                ],
                sc.orchestrator.drained_at,
                sc.orchestrator.throttle,
            )

        assert fingerprint() == fingerprint()

    def test_different_seed_changes_the_run(self):
        a = run_recovery_scenario(num_stripes=8, foreground_reads=40,
                                  chunk_bytes=4096, seed=1)
        b = run_recovery_scenario(num_stripes=8, foreground_reads=40,
                                  chunk_bytes=4096, seed=2)
        assert [r.latency_s for r in a.foreground.reads] != [
            r.latency_s for r in b.foreground.reads
        ]

    def test_recovery_metrics_published(self):
        sc = run_recovery_scenario(
            num_stripes=12, foreground_reads=40, chunk_bytes=4096
        )
        names = {name for name, _fam in sc.metrics.families()}
        for expected in (
            "repro_recovery_queue_depth",
            "repro_recovery_queue_oldest_age_seconds",
            "repro_recovery_inflight",
            "repro_recovery_budget_fraction",
            "repro_recovery_budget_committed_fraction",
            "repro_recovery_enqueued_total",
            "repro_recovery_admitted_total",
            "repro_recovery_completed_total",
            "repro_recovery_repair_seconds",
            "repro_recovery_share_seconds_total",
            "repro_foreground_latency_seconds",
            "repro_foreground_reads_total",
        ):
            assert expected in names, expected
        assert sc.metrics.total("repro_recovery_admitted_total") >= 6

    def test_recovery_spans_and_events_emitted(self):
        sc = run_recovery_scenario(
            num_stripes=12, foreground_reads=40, chunk_bytes=4096
        )
        runs = sc.tracer.find(kind="recovery")
        assert len(runs) == 1
        events = {e.name for e in runs[0].events}
        assert {"recovery.failure", "recovery.admit",
                "recovery.complete", "recovery.drained"} <= events


class TestFailurePaths:
    def test_no_spare_requester_dead_letters_and_terminates(self):
        # the only node outside every placement is dead too: nothing can
        # host a rebuild, so the backlog must dead-letter, not spin
        sys_, write, _ = make_system(num_nodes=5, n=4, k=2)
        write("s0", (0, 1, 2, 3))
        orch = RecoveryOrchestrator(
            sys_, RecoveryConfig(max_concurrent=1, max_item_attempts=2)
        )
        orch.start()
        sys_.fail_node(4)
        sys_.fail_node(0)
        sys_.events.run()
        assert orch.dead_letters == {
            "s0": "no spare live node to rebuild onto"
        }
        assert not orch.active
        assert orch.drained_at is not None

    def test_beyond_tolerance_stripe_dead_letters(self):
        # n-k = 2 lost chunks is repairable, 3 is not: the orchestrator
        # must surface the planner's refusal instead of looping
        sys_, write, _ = make_system(num_nodes=8, n=4, k=2)
        write("s0", (0, 1, 2, 3))
        orch = RecoveryOrchestrator(
            sys_, RecoveryConfig(max_concurrent=1, max_item_attempts=2)
        )
        orch.start()
        for node in (0, 1, 2):
            sys_.fail_node(node)
        sys_.events.run()
        assert "s0" in orch.dead_letters
        assert not orch.active

    def test_healed_while_queued_is_skipped(self):
        sys_, write, payloads = make_system()
        write("s0", (0, 4, 5, 6))
        orch = RecoveryOrchestrator(sys_, RecoveryConfig(max_concurrent=1))
        sys_.fail_node(0)  # queued (orchestrator not started: no tick yet)
        # a degraded read with store=True heals the stripe out-of-band
        done = []
        orch_started = orch.start
        sys_.repair_async(
            "s0", 0, requester=7, store=True, on_done=done.append
        )
        sys_.events.run()
        assert done and done[0].verified
        orch_started()
        sys_.events.run()
        assert orch.skipped == 1
        assert orch.records == []
