"""Analytic pipeline-law model vs the exact executor."""

import numpy as np
import pytest

from repro.ec.slicing import Segment
from repro.net import BandwidthSnapshot, RepairContext, units
from repro.repair.plan import Edge, Pipeline, RepairPlan
from repro.sim import TransferParams, execute, ideal_transfer_seconds
from repro.sim.analytic import pipeline_transfer_seconds, plan_transfer_seconds


def make_context(num_nodes=8, k=3):
    snap = BandwidthSnapshot.uniform(num_nodes, 1000.0)
    return RepairContext(
        snapshot=snap, requester=0, helpers=tuple(range(1, num_nodes)), k=k
    )


class TestAgreementWithExecutor:
    @pytest.mark.parametrize("depth", [1, 2, 3, 5])
    def test_chain_agreement_uniform_slices(self, depth):
        ctx = make_context(k=depth)
        nodes = list(range(1, depth + 1))
        edges = [Edge(a, b, 200.0) for a, b in zip(nodes, nodes[1:])]
        edges.append(Edge(nodes[-1], 0, 200.0))
        plan = RepairPlan(
            algorithm="t", context=ctx,
            pipelines=[Pipeline(0, Segment(0.0, 1.0), edges)],
        )
        params = TransferParams(
            chunk_bytes=units.kib(64) * 16, slice_bytes=units.kib(64)
        )
        exact = execute(plan, params).transfer_seconds
        closed = plan_transfer_seconds(plan, params)
        assert closed == pytest.approx(exact, rel=1e-9)

    def test_star_agreement(self):
        ctx = make_context(k=3)
        edges = [Edge(h, 0, 150.0) for h in (1, 2, 3)]
        plan = RepairPlan(
            algorithm="t", context=ctx,
            pipelines=[Pipeline(0, Segment(0.0, 1.0), edges)],
        )
        params = TransferParams(
            chunk_bytes=units.kib(64) * 8, slice_bytes=units.kib(64)
        )
        assert plan_transfer_seconds(plan, params) == pytest.approx(
            execute(plan, params).transfer_seconds, rel=1e-9
        )

    def test_hub_tree_agreement(self):
        """FullRepair's depth-2 shape: senders -> hub -> requester."""
        ctx = make_context(k=3)
        edges = [Edge(2, 1, 100.0), Edge(3, 1, 100.0), Edge(1, 0, 100.0)]
        plan = RepairPlan(
            algorithm="t", context=ctx,
            pipelines=[Pipeline(0, Segment(0.0, 1.0), edges)],
        )
        params = TransferParams(
            chunk_bytes=units.kib(64) * 4, slice_bytes=units.kib(64)
        )
        assert plan_transfer_seconds(plan, params) == pytest.approx(
            execute(plan, params).transfer_seconds, rel=1e-9
        )

    def test_remainder_slice_within_tolerance(self):
        ctx = make_context(k=2)
        edges = [Edge(1, 2, 100.0), Edge(2, 0, 100.0)]
        plan = RepairPlan(
            algorithm="t", context=ctx,
            pipelines=[Pipeline(0, Segment(0.0, 1.0), edges)],
        )
        params = TransferParams(chunk_bytes=units.mib(1) + 777)
        exact = execute(plan, params).transfer_seconds
        closed = plan_transfer_seconds(plan, params)
        assert closed == pytest.approx(exact, rel=0.01)

    def test_non_uniform_rates_rejected(self):
        ctx = make_context(k=2)
        pipe = Pipeline(0, Segment(0.0, 1.0), [Edge(1, 2, 100.0), Edge(2, 0, 50.0)])
        with pytest.raises(ValueError):
            pipeline_transfer_seconds(pipe, 0, TransferParams(chunk_bytes=1024))


class TestIdealBound:
    def test_formula(self):
        assert ideal_transfer_seconds(units.mib(64), 900.0) == pytest.approx(
            units.transfer_seconds(units.mib(64), 900.0)
        )

    def test_zero_rate_raises(self):
        with pytest.raises(ValueError):
            ideal_transfer_seconds(100, 0.0)

    def test_executor_never_beats_ideal(self):
        ctx = make_context(k=3)
        edges = [Edge(2, 1, 100.0), Edge(3, 1, 100.0), Edge(1, 0, 100.0)]
        plan = RepairPlan(
            algorithm="t", context=ctx,
            pipelines=[Pipeline(0, Segment(0.0, 1.0), edges)],
        )
        params = TransferParams(chunk_bytes=units.mib(4))
        exact = execute(plan, params).transfer_seconds
        assert exact >= ideal_transfer_seconds(units.mib(4), 100.0)
