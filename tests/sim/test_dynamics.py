"""Repair under bandwidth drift."""

import numpy as np
import pytest

from repro.net import BandwidthSnapshot, units
from repro.repair import get_algorithm
from repro.sim import simulate_under_drift
from repro.sim.dynamics import _interval_progress
from repro.workloads import Trace, make_trace


def flat_trace(num_nodes=8, bw=400.0, length=100):
    return Trace(
        workload="flat",
        capacity_mbps=1000.0,
        uplink=np.full((length, num_nodes), bw),
        downlink=np.full((length, num_nodes), bw),
    )


def run(algorithm, trace, *, chunk=units.mib(64), replan=None, start=0,
        helpers=tuple(range(1, 7)), k=4, requester=7):
    return simulate_under_drift(
        get_algorithm(algorithm), trace, start_instant=start,
        requester=requester, helpers=helpers, k=k, chunk_bytes=chunk,
        replan_interval_s=replan,
    )


class TestFlatTrace:
    def test_matches_ideal_time_on_constant_bandwidth(self):
        """No drift: drift-sim time == chunk / plan-rate + calc."""
        trace = flat_trace()
        res = run("pivotrepair", trace)
        assert res.completed
        # uniform 400 Mbps, 6 helpers, k=4: single pipeline at 400
        expected = units.transfer_seconds(units.mib(64), 400.0)
        assert res.seconds == pytest.approx(expected, rel=0.01)

    def test_fullrepair_faster_than_single_pipeline(self):
        # fat requester downlink: aggregate throughput beats any single
        # pipeline (which is capped by the 300 Mbps helper links)
        up = np.full((100, 8), 300.0)
        down = np.full((100, 8), 300.0)
        down[:, 7] = 1000.0
        trace = Trace(workload="flat", capacity_mbps=1000.0, uplink=up, downlink=down)
        t_full = run("fullrepair", trace).seconds
        t_tree = run("pivotrepair", trace).seconds
        assert t_full < t_tree

    def test_replan_noop_on_stable_bandwidth(self):
        trace = flat_trace(length=300)
        static = run("fullrepair", trace, chunk=units.mib(512))
        adaptive = run("fullrepair", trace, chunk=units.mib(512), replan=2.0)
        # replans happen but cannot improve a stationary optimum
        assert adaptive.replans > 0
        assert adaptive.seconds == pytest.approx(
            static.seconds, rel=0.02, abs=adaptive.calc_seconds_total + 0.05
        )


class TestDrift:
    @pytest.fixture(scope="class")
    def swim_trace(self):
        return make_trace("swim", num_nodes=16, num_snapshots=1500, seed=3)

    def _args(self, trace):
        rng = np.random.default_rng(1)
        nodes = rng.permutation(16)
        start = int(trace.congested_instants()[200])
        return dict(
            helpers=tuple(int(x) for x in nodes[1:9]),
            requester=int(nodes[9]),
            k=6,
            start=start,
        )

    def test_replanning_helps_under_drift(self, swim_trace):
        kw = self._args(swim_trace)
        static = run("fullrepair", swim_trace, chunk=units.mib(1024), **kw)
        adaptive = run(
            "fullrepair", swim_trace, chunk=units.mib(1024), replan=3.0, **kw
        )
        assert static.completed and adaptive.completed
        assert adaptive.replans > 0
        assert adaptive.seconds < static.seconds

    def test_goodput_trace_recorded(self, swim_trace):
        kw = self._args(swim_trace)
        res = run("rp", swim_trace, chunk=units.mib(256), **kw)
        assert res.goodput_mbps
        assert all(g >= 0 for g in res.goodput_mbps)

    def test_timeout_reports_incomplete(self):
        dead = Trace(
            workload="dead",
            capacity_mbps=1000.0,
            uplink=np.zeros((50, 8)),
            downlink=np.zeros((50, 8)),
        )
        # schedule against a healthy first instant, then everything dies
        start_ok = flat_trace(length=1)
        mixed = Trace(
            workload="mixed",
            capacity_mbps=1000.0,
            uplink=np.vstack([start_ok.uplink, dead.uplink]),
            downlink=np.vstack([start_ok.downlink, dead.downlink]),
        )
        res = simulate_under_drift(
            get_algorithm("rp"), mixed, start_instant=0, requester=7,
            helpers=tuple(range(1, 7)), k=4, chunk_bytes=units.mib(64),
            max_seconds=30.0,
        )
        assert not res.completed
        assert res.stalled_intervals > 0

    def test_bad_start_instant(self):
        with pytest.raises(ValueError):
            run("rp", flat_trace(length=10), start=99)


class TestIntervalProgress:
    def test_partial_capacity_slows_flows(self):
        from repro.ec.slicing import Segment
        from repro.net import RepairContext
        from repro.repair.plan import Edge, Pipeline, RepairPlan

        snap_full = BandwidthSnapshot.uniform(4, 100.0)
        ctx = RepairContext(
            snapshot=snap_full, requester=0, helpers=(1, 2, 3), k=2
        )
        plan = RepairPlan(
            "t", ctx,
            [Pipeline(0, Segment(0, 1), [Edge(1, 2, 100.0), Edge(2, 0, 100.0)])],
        )
        remaining = {0: units.mib(10)}
        degraded = BandwidthSnapshot.uniform(4, 50.0)
        step, moved = _interval_progress(plan, degraded, remaining, 1.0)
        assert step == 1.0
        assert moved == pytest.approx(units.mbps_to_bytes_per_s(50.0))

    def test_finished_pipeline_ignored(self):
        from repro.ec.slicing import Segment
        from repro.net import RepairContext
        from repro.repair.plan import Edge, Pipeline, RepairPlan

        snap = BandwidthSnapshot.uniform(4, 100.0)
        ctx = RepairContext(snapshot=snap, requester=0, helpers=(1, 2, 3), k=2)
        plan = RepairPlan(
            "t", ctx,
            [Pipeline(0, Segment(0, 1), [Edge(1, 2, 100.0), Edge(2, 0, 100.0)])],
        )
        step, moved = _interval_progress(plan, snap, {0: 0.0}, 1.0)
        assert step == 0.0 and moved == 0.0


class TestInjectedFaults:
    def test_dead_helper_stalls_with_fault_cause(self):
        """A crashed helper with no re-planning pins its pipeline at zero
        progress; the stall records name the fault, not congestion."""
        trace = flat_trace()
        res = simulate_under_drift(
            get_algorithm("rp"), trace, start_instant=0, requester=7,
            helpers=(1, 2, 3, 4), k=4, chunk_bytes=units.mib(64),
            dead_from={1: 0.5}, stall_deadline_s=5.0,
        )
        assert not res.completed
        assert res.timed_out
        assert res.stalled_intervals > 0
        assert res.stalled_intervals == len(res.stalls)
        assert all(s.cause == "fault" for s in res.stalls)

    def test_congestion_stall_keeps_congestion_cause(self):
        """Zero bandwidth everywhere (no injected fault) stalls with the
        congestion cause."""
        trace = flat_trace()
        trace.uplink[5:] = 0.0
        trace.downlink[5:] = 0.0
        res = simulate_under_drift(
            get_algorithm("rp"), trace, start_instant=0, requester=7,
            helpers=tuple(range(1, 7)), k=4, chunk_bytes=units.mib(4096),
            stall_deadline_s=3.0,
        )
        assert res.timed_out and not res.completed
        assert res.stalls and all(s.cause == "congestion" for s in res.stalls)

    def test_stall_deadline_bounds_runtime(self):
        """Without the deadline a dead helper grinds to max_seconds; with
        it the sim gives up as soon as the stall budget is spent."""
        trace = flat_trace(length=10)
        kw = dict(
            start_instant=0, requester=7, helpers=(1, 2, 3, 4), k=4,
            chunk_bytes=units.mib(64), dead_from={1: 0.5},
        )
        bounded = simulate_under_drift(
            get_algorithm("rp"), trace, stall_deadline_s=4.0, **kw
        )
        unbounded = simulate_under_drift(
            get_algorithm("rp"), trace, max_seconds=60.0, **kw
        )
        assert bounded.timed_out
        assert bounded.seconds < unbounded.seconds
        assert not unbounded.timed_out  # hit max_seconds, not the deadline

    def test_replanning_routes_around_the_crash(self):
        """With re-planning enabled the scheduler drops the dead helper
        at the next period and the repair completes."""
        trace = flat_trace(length=200)
        res = simulate_under_drift(
            get_algorithm("fullrepair"), trace, start_instant=0, requester=7,
            helpers=tuple(range(1, 7)), k=4, chunk_bytes=units.mib(64),
            dead_from={1: 0.5}, replan_interval_s=1.0, stall_deadline_s=30.0,
        )
        assert res.completed
        assert res.replans >= 1

    def test_straggler_cap_slows_completion(self):
        trace = flat_trace()
        clean = run("rp", trace)
        capped = simulate_under_drift(
            get_algorithm("rp"), trace, start_instant=0, requester=7,
            helpers=(1, 2, 3, 4), k=4, chunk_bytes=units.mib(64),
            node_rate_caps={1: 50.0, 2: 50.0},
        )
        assert capped.completed
        assert capped.seconds > clean.seconds

    def test_invalid_stall_deadline_rejected(self):
        with pytest.raises(ValueError):
            simulate_under_drift(
                get_algorithm("rp"), flat_trace(), start_instant=0,
                requester=7, helpers=tuple(range(1, 7)), k=4,
                chunk_bytes=units.mib(1), stall_deadline_s=0.0,
            )

    def test_fault_plus_congestion_reports_mixed_cause(self):
        """A dead helper AND starved healthy pipelines in the same
        interval: the stall cause is ``"mixed"``, not a fault that
        silently masks the concurrent congestion."""
        # fat requester downlink so fullrepair builds several pipelines
        # over *different* 4-of-6 helper subsets; instant 0 is healthy
        # (the plan schedules there), everything after carries nothing
        up = np.full((10, 8), 300.0)
        down = np.full((10, 8), 300.0)
        down[:, 7] = 1000.0
        up[1:] = 0.0
        down[1:] = 0.0
        trace = Trace(
            workload="mixed", capacity_mbps=1000.0, uplink=up, downlink=down
        )
        res = simulate_under_drift(
            get_algorithm("fullrepair"), trace, start_instant=0,
            requester=7, helpers=tuple(range(1, 7)), k=4,
            chunk_bytes=units.mib(512), dead_from={6: 0.5},
            stall_deadline_s=3.0,
        )
        assert res.timed_out and not res.completed
        assert res.stalls
        assert all(s.cause == "mixed" for s in res.stalls)


class TestDetectReplan:
    """``replan_on="detect"``: re-planning driven by divergence alarms."""

    def _swim_kwargs(self, **over):
        kw = dict(
            start_instant=0, requester=9, helpers=tuple(range(6)), k=4,
            chunk_bytes=units.mib(2048), interval_s=1.0,
            stall_deadline_s=120.0,
        )
        kw.update(over)
        return kw

    def test_flat_trace_never_alarms(self):
        """False-positive floor: a stationary plan raises no alarms and
        triggers no re-plans."""
        res = simulate_under_drift(
            get_algorithm("fullrepair"), flat_trace(num_nodes=10, length=400),
            replan_on="detect",
            **self._swim_kwargs(chunk_bytes=units.mib(512)),
        )
        assert res.completed
        assert res.alarms == 0 and res.alarm_seconds == []
        assert res.replans == 0

    def test_dead_helper_alarms_and_beats_never_replan(self):
        """A helper dying mid-repair is detected within a bounded number
        of intervals and the alarm-triggered re-plan routes around it."""
        trace = make_trace("swim", num_nodes=10, num_snapshots=400, seed=3)
        kw = self._swim_kwargs(dead_from={2: 5.0})
        never = simulate_under_drift(get_algorithm("fullrepair"), trace, **kw)
        detect = simulate_under_drift(
            get_algorithm("fullrepair"), trace,
            replan_on="detect", replan_interval_s=15.0, **kw,
        )
        assert detect.completed
        assert detect.alarms >= 1
        # detection latency: first alarm within a handful of intervals
        assert 5.0 < detect.alarm_seconds[0] <= 25.0
        assert detect.replans >= 1
        assert detect.seconds < never.seconds

    def test_interval_mode_records_no_alarms(self):
        trace = make_trace("swim", num_nodes=10, num_snapshots=400, seed=3)
        res = simulate_under_drift(
            get_algorithm("fullrepair"), trace, replan_interval_s=3.0,
            **self._swim_kwargs(),
        )
        assert res.alarms == 0 and res.alarm_seconds == []

    def test_custom_detector_is_honoured(self):
        """A caller-supplied detector replaces the default ref-scored
        CUSUM — here one so insensitive it never fires."""
        from repro.obs.detect import CUSUMDetector

        trace = make_trace("swim", num_nodes=10, num_snapshots=400, seed=3)
        numb = CUSUMDetector(k=0.5, h=1e9, ref=1.0, direction="down")
        res = simulate_under_drift(
            get_algorithm("fullrepair"), trace,
            replan_on="detect", detector=numb,
            **self._swim_kwargs(dead_from={2: 5.0}),
        )
        assert res.alarms == 0
        assert res.replans == 0

    def test_invalid_replan_on_rejected(self):
        with pytest.raises(ValueError):
            simulate_under_drift(
                get_algorithm("rp"), flat_trace(), start_instant=0,
                requester=7, helpers=tuple(range(1, 7)), k=4,
                chunk_bytes=units.mib(1), replan_on="sometimes",
            )
