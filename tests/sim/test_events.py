"""Deterministic event-queue core."""

import pytest

from repro.sim import EventQueue


class TestEventQueue:
    def test_starts_at_zero(self):
        assert EventQueue().now == 0.0

    def test_runs_in_time_order(self):
        q = EventQueue()
        order = []
        q.schedule(3.0, lambda: order.append("c"))
        q.schedule(1.0, lambda: order.append("a"))
        q.schedule(2.0, lambda: order.append("b"))
        q.run()
        assert order == ["a", "b", "c"]
        assert q.now == 3.0

    def test_fifo_at_equal_times(self):
        q = EventQueue()
        order = []
        for name in "abc":
            q.schedule(1.0, lambda n=name: order.append(n))
        q.run()
        assert order == ["a", "b", "c"]

    def test_schedule_at_absolute(self):
        q = EventQueue()
        hits = []
        q.schedule_at(5.0, lambda: hits.append(q.now))
        q.run()
        assert hits == [5.0]

    def test_negative_delay_raises(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-1.0, lambda: None)

    def test_cancel(self):
        q = EventQueue()
        hits = []
        handle = q.schedule(1.0, lambda: hits.append(1))
        q.cancel(handle)
        q.run()
        assert hits == []

    def test_events_scheduling_events(self):
        q = EventQueue()
        hits = []

        def first():
            hits.append(q.now)
            q.schedule(2.0, lambda: hits.append(q.now))

        q.schedule(1.0, first)
        q.run()
        assert hits == [1.0, 3.0]

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_run_until(self):
        q = EventQueue()
        hits = []
        q.schedule(1.0, lambda: hits.append(1))
        q.schedule(10.0, lambda: hits.append(2))
        q.run(until=5.0)
        assert hits == [1]
        assert q.now == 5.0
        q.run()
        assert hits == [1, 2]

    def test_runaway_guard(self):
        q = EventQueue()

        def loop():
            q.schedule(0.0, loop)

        q.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            q.run(max_events=100)


class TestScheduleAtClamp:
    """Absolute times a few ulps in the past clamp to now (float rounding
    from ``start + k * dt``-style arithmetic); genuinely past times raise."""

    def test_microscopic_past_runs_immediately(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run()
        fired = []
        q.schedule_at(1.0 - 1e-13, lambda: fired.append(q.now))
        q.run()
        assert fired == [1.0]

    def test_clamp_scales_with_simulation_time(self):
        q = EventQueue()
        q.schedule(1e6, lambda: None)
        q.run()
        fired = []
        # one ulp of 1e6 is ~1.2e-10: representative accumulated rounding
        q.schedule_at(1e6 - 1e-10, lambda: fired.append(True))
        q.run()
        assert fired == [True]

    def test_genuinely_past_time_still_raises(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule_at(0.5, lambda: None)

    def test_clamped_events_keep_insertion_order(self):
        q = EventQueue()
        q.schedule(2.0, lambda: None)
        q.run()
        order = []
        q.schedule_at(2.0 - 1e-13, lambda: order.append("first"))
        q.schedule_at(2.0, lambda: order.append("second"))
        q.run()
        assert order == ["first", "second"]


class TestCancel:
    def test_cancel_before_fire(self):
        q = EventQueue()
        fired = []
        entry = q.schedule(1.0, lambda: fired.append("x"))
        assert q.is_pending(entry)
        assert q.cancel(entry) is True
        assert not q.is_pending(entry)
        q.schedule(2.0, lambda: fired.append("y"))
        q.run()
        assert fired == ["y"]
        assert q.now == 2.0  # cancelled events still advance past their slot

    def test_cancel_by_event_id(self):
        q = EventQueue()
        fired = []
        entry = q.schedule(1.0, lambda: fired.append("x"))
        assert q.cancel(entry.event_id) is True
        q.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        q = EventQueue()
        fired = []
        entry = q.schedule(1.0, lambda: fired.append("x"))
        q.run()
        assert fired == ["x"]
        assert q.cancel(entry) is False  # already fired: nothing to cancel
        assert not q.is_pending(entry)

    def test_double_cancel_returns_false(self):
        q = EventQueue()
        entry = q.schedule(1.0, lambda: None)
        assert q.cancel(entry) is True
        assert q.cancel(entry) is False

    def test_cancel_unknown_id_returns_false(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        assert q.cancel(999999) is False

    def test_cancelled_event_does_not_block_reschedule(self):
        q = EventQueue()
        order = []
        victim = q.schedule(1.0, lambda: order.append("victim"))
        q.schedule(1.0, lambda: order.append("kept"))
        q.cancel(victim)
        q.run()
        assert order == ["kept"]


class TestBatchedRun:
    """`run` coalesces same-timestamp events into one heap-pop streak;
    these tests pin the semantics that batching must not change."""

    def test_same_time_insertion_during_batch_runs_after_it(self):
        q = EventQueue()
        order = []

        def first():
            order.append("first")
            # same timestamp as the batch being drained: higher seq, so
            # it must run after every already-scheduled same-time event
            q.schedule(0.0, lambda: order.append("late"))

        q.schedule(1.0, first)
        q.schedule(1.0, lambda: order.append("second"))
        q.run()
        assert order == ["first", "second", "late"]
        assert q.now == 1.0

    def test_cancel_later_batch_member_from_earlier_one(self):
        """An action may cancel a same-timestamp event already popped
        into the batch; the lazy flag must still suppress it."""
        q = EventQueue()
        order = []
        victim = None

        def canceller():
            order.append("canceller")
            assert q.cancel(victim) is True

        q.schedule(1.0, canceller)
        victim = q.schedule(1.0, lambda: order.append("victim"))
        q.schedule(1.0, lambda: order.append("kept"))
        q.run()
        assert order == ["canceller", "kept"]
        assert q.executed == 2

    def test_run_matches_step_loop_order(self):
        """Batched drain and per-event stepping execute identically."""
        import random

        def build(q, log):
            rng = random.Random(1234)
            def make(tag):
                def action():
                    log.append((q.now, tag))
                    if rng.random() < 0.3:
                        q.schedule(rng.choice([0.0, 0.5, 1.0]), make(tag + 1000))
                return action
            for i in range(200):
                q.schedule(rng.choice([0.0, 1.0, 1.0, 2.0]), make(i))

        q_run, log_run = EventQueue(), []
        build(q_run, log_run)
        q_run.run()
        q_step, log_step = EventQueue(), []
        build(q_step, log_step)
        while q_step.step():
            pass
        assert log_run == log_step
        assert q_run.executed == q_step.executed

    def test_until_boundary_between_batches(self):
        q = EventQueue()
        hits = []
        for _ in range(3):
            q.schedule(1.0, lambda: hits.append(q.now))
        for _ in range(3):
            q.schedule(2.0, lambda: hits.append(q.now))
        q.run(until=1.5)
        assert hits == [1.0, 1.0, 1.0]
        assert q.now == 1.5
        q.run()
        assert hits == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_counters_track_batch_execution(self):
        q = EventQueue()
        for _ in range(5):
            q.schedule(1.0, lambda: None)
        cancelled = q.schedule(1.0, lambda: None)
        q.cancel(cancelled)
        assert q.pending_count == 5
        assert q.peak_pending == 6
        q.run()
        assert q.executed == 5
        assert q.pending_count == 0

    def test_max_events_enforced_within_batch(self):
        q = EventQueue()
        for _ in range(10):
            q.schedule(1.0, lambda: None)
        with pytest.raises(RuntimeError):
            q.run(max_events=5)


class TestMaxEventsExact:
    """``max_events=N`` runs exactly N events — the historical guard
    fired only after executing N+1 (off-by-one)."""

    def test_exactly_max_events_execute_before_raise(self):
        q = EventQueue()
        hits = []
        for i in range(10):
            q.schedule(0.001 * i, lambda i=i: hits.append(i))
        with pytest.raises(RuntimeError, match="runaway"):
            q.run(max_events=5)
        assert hits == [0, 1, 2, 3, 4]
        assert q.executed == 5

    def test_exact_budget_drains_without_raising(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(0.001 * i, lambda: None)
        q.run(max_events=5)  # exactly enough: no raise
        assert q.executed == 5

    def test_overflow_event_stays_queued_and_resumable(self):
        q = EventQueue()
        hits = []
        for i in range(8):
            q.schedule(1.0, lambda i=i: hits.append(i))  # one batch
        with pytest.raises(RuntimeError):
            q.run(max_events=3)
        assert hits == [0, 1, 2]
        assert q.pending_count == 5
        q.run()  # the aborted batch's remainder is still consistent
        assert hits == list(range(8))
        assert q.pending_count == 0


class TestEventBudget:
    """The persistent budget shared (and drawn down) by run() and step()."""

    def test_run_honours_and_draws_down_budget(self):
        q = EventQueue()
        hits = []
        for i in range(10):
            q.schedule(0.001 * i, lambda i=i: hits.append(i))
        q.set_event_budget(4)
        with pytest.raises(RuntimeError, match="budget"):
            q.run()
        assert hits == [0, 1, 2, 3]
        assert q.event_budget == 0

    def test_step_shares_the_same_budget(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(0.001 * i, lambda: None)
        q.set_event_budget(3)
        q.step()
        assert q.event_budget == 2
        with pytest.raises(RuntimeError, match="budget"):
            q.run()
        assert q.event_budget == 0
        with pytest.raises(RuntimeError, match="budget"):
            q.step()
        # the refused event was not consumed
        assert q.pending_count == 2

    def test_topping_up_resumes_where_it_stopped(self):
        q = EventQueue()
        hits = []
        for i in range(6):
            q.schedule(0.001 * i, lambda i=i: hits.append(i))
        q.set_event_budget(2)
        with pytest.raises(RuntimeError):
            q.run()
        q.set_event_budget(10)
        q.run()
        assert hits == list(range(6))
        assert q.event_budget == 6

    def test_clearing_budget_disarms_it(self):
        q = EventQueue()
        for _ in range(3):
            q.schedule(0.0, lambda: None)
        q.set_event_budget(1)
        q.set_event_budget(None)
        q.run()
        assert q.executed == 3
        assert q.event_budget is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().set_event_budget(-1)

    def test_budget_tighter_than_max_events_wins(self):
        q = EventQueue()
        for _ in range(5):
            q.schedule(0.0, lambda: None)
        q.set_event_budget(2)
        with pytest.raises(RuntimeError, match="budget"):
            q.run(max_events=100)
        assert q.executed == 2
