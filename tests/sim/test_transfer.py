"""Exact pipelined-transfer executor: hand-computed cases + invariants."""

import numpy as np
import pytest

from repro.ec.slicing import Segment
from repro.net import BandwidthSnapshot, RepairContext, units
from repro.repair.plan import Edge, Pipeline, RepairPlan
from repro.sim import TransferParams, execute
from repro.sim.transfer import _fifo_arrivals


def make_context(num_nodes=6, bw=1000.0, k=2):
    snap = BandwidthSnapshot.uniform(num_nodes, bw)
    return RepairContext(
        snapshot=snap, requester=0, helpers=tuple(range(1, num_nodes)), k=k
    )


def chain_plan(context, rate, nodes):
    """nodes[0] -> nodes[1] -> ... -> requester at uniform rate."""
    edges = [Edge(a, b, rate) for a, b in zip(nodes, nodes[1:])]
    edges.append(Edge(nodes[-1], context.requester, rate))
    return RepairPlan(
        algorithm="test",
        context=context,
        pipelines=[Pipeline(task_id=0, segment=Segment(0.0, 1.0), edges=edges)],
    )


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransferParams(chunk_bytes=-1)
        with pytest.raises(ValueError):
            TransferParams(chunk_bytes=10, slice_bytes=0)
        with pytest.raises(ValueError):
            TransferParams(chunk_bytes=10, slice_overhead_s=-1.0)


class TestFifoArrivals:
    def test_all_ready_serialises(self):
        ready = np.zeros(4)
        occ = np.full(4, 2.0)
        arr = _fifo_arrivals(ready, occ, latency=0.0)
        assert list(arr) == [2.0, 4.0, 6.0, 8.0]

    def test_late_ready_stalls(self):
        ready = np.array([0.0, 10.0, 10.0])
        occ = np.full(3, 2.0)
        arr = _fifo_arrivals(ready, occ, latency=0.0)
        assert list(arr) == [2.0, 12.0, 14.0]

    def test_latency_added_per_slice(self):
        ready = np.zeros(2)
        occ = np.full(2, 1.0)
        arr = _fifo_arrivals(ready, occ, latency=0.5)
        assert list(arr) == [1.5, 2.5]

    def test_variable_occupancy(self):
        ready = np.zeros(3)
        occ = np.array([1.0, 2.0, 0.5])
        arr = _fifo_arrivals(ready, occ, latency=0.0)
        assert list(arr) == [1.0, 3.0, 3.5]


class TestChainExecution:
    def test_single_hop_no_overheads(self):
        ctx = make_context(k=1)
        plan = RepairPlan(
            algorithm="test",
            context=ctx,
            pipelines=[
                Pipeline(0, Segment(0.0, 1.0), [Edge(1, 0, 800.0)])
            ],
        )
        params = TransferParams(
            chunk_bytes=units.mib(1),
            slice_bytes=None,
            slice_overhead_s=0.0,
            compute_s_per_byte=0.0,
        )
        result = execute(plan, params)
        expected = units.transfer_seconds(units.mib(1), 800.0)
        assert result.transfer_seconds == pytest.approx(expected)

    def test_pipeline_law_uniform_slices(self):
        """(S + depth - 1) stage times for a 2-hop chain, zero compute."""
        ctx = make_context(k=2)
        plan = chain_plan(ctx, rate=100.0, nodes=[1, 2])
        slice_bytes = 12_500  # 1 ms at 100 Mbps
        params = TransferParams(
            chunk_bytes=slice_bytes * 8,
            slice_bytes=slice_bytes,
            slice_overhead_s=0.0,
            compute_s_per_byte=0.0,
        )
        result = execute(plan, params)
        stage = slice_bytes / units.mbps_to_bytes_per_s(100.0)
        assert result.transfer_seconds == pytest.approx((8 + 2 - 1) * stage)

    def test_overhead_charged_per_slice_per_hop(self):
        ctx = make_context(k=2)
        plan = chain_plan(ctx, rate=100.0, nodes=[1, 2])
        slice_bytes = 12_500
        base = TransferParams(
            chunk_bytes=slice_bytes * 4, slice_bytes=slice_bytes,
            slice_overhead_s=0.0, compute_s_per_byte=0.0,
        )
        loaded = TransferParams(
            chunk_bytes=slice_bytes * 4, slice_bytes=slice_bytes,
            slice_overhead_s=1e-3, compute_s_per_byte=0.0,
        )
        t0 = execute(plan, base).transfer_seconds
        t1 = execute(plan, loaded).transfer_seconds
        # (S + d - 1) extra stage overheads
        assert t1 - t0 == pytest.approx((4 + 2 - 1) * 1e-3)

    def test_compute_charged_on_combining_path(self):
        ctx = make_context(k=2)
        plan = chain_plan(ctx, rate=100.0, nodes=[1, 2])
        slice_bytes = 12_500
        params = TransferParams(
            chunk_bytes=slice_bytes, slice_bytes=slice_bytes,
            slice_overhead_s=0.0, compute_s_per_byte=1e-9,
        )
        result = execute(plan, params)
        stage = slice_bytes / units.mbps_to_bytes_per_s(100.0)
        # node 2 combines + requester combines: 2 compute charges
        assert result.transfer_seconds == pytest.approx(2 * stage + 2 * 1e-9 * slice_bytes)

    def test_deeper_chain_is_slower(self):
        ctx = make_context(num_nodes=8, k=4)
        short = chain_plan(make_context(num_nodes=8, k=2), 100.0, [1, 2])
        long = chain_plan(ctx, 100.0, [1, 2, 3, 4])
        params = TransferParams(chunk_bytes=units.mib(4))
        assert (
            execute(long, params).transfer_seconds
            > execute(short, params).transfer_seconds
        )

    def test_remainder_slice(self):
        ctx = make_context(k=2)
        plan = chain_plan(ctx, rate=100.0, nodes=[1, 2])
        params = TransferParams(
            chunk_bytes=30_000, slice_bytes=12_500,
            slice_overhead_s=0.0, compute_s_per_byte=0.0,
        )
        result = execute(plan, params)
        rate = units.mbps_to_bytes_per_s(100.0)
        # slices 12500, 12500, 5000: hop 2's link is busy with the two
        # full slices until 3 stage times, then the short slice crosses
        assert result.transfer_seconds == pytest.approx(
            (2 + 2 - 1) * 12_500 / rate + 5_000 / rate
        )


class TestMultiPipeline:
    def test_star_pipeline(self):
        """k leaf children of R, each edge carries the full chunk."""
        ctx = make_context(k=3)
        edges = [Edge(h, 0, 100.0) for h in (1, 2, 3)]
        plan = RepairPlan(
            algorithm="test",
            context=ctx,
            pipelines=[Pipeline(0, Segment(0.0, 1.0), edges)],
        )
        params = TransferParams(
            chunk_bytes=units.mib(1), slice_bytes=None,
            slice_overhead_s=0.0, compute_s_per_byte=0.0,
        )
        result = execute(plan, params)
        assert result.transfer_seconds == pytest.approx(
            units.transfer_seconds(units.mib(1), 100.0)
        )
        assert result.bytes_moved == pytest.approx(3 * units.mib(1))

    def test_parallel_segments_overlap_in_time(self):
        """Two half-chunk pipelines run concurrently: the makespan equals
        one pipeline moving half the chunk (not the sum)."""
        ctx = make_context(num_nodes=8, k=2)
        halves = RepairPlan(
            algorithm="test", context=ctx,
            pipelines=[
                Pipeline(0, Segment(0.0, 0.5), [Edge(1, 2, 100.0), Edge(2, 0, 100.0)]),
                Pipeline(1, Segment(0.5, 1.0), [Edge(3, 4, 100.0), Edge(4, 0, 100.0)]),
            ],
        )
        single_half = RepairPlan(
            algorithm="test", context=ctx,
            pipelines=[Pipeline(0, Segment(0.0, 1.0),
                                [Edge(1, 2, 100.0), Edge(2, 0, 100.0)])],
        )
        params = TransferParams(
            chunk_bytes=units.mib(8), slice_bytes=None,
            slice_overhead_s=0.0, compute_s_per_byte=0.0,
        )
        t_half = execute(halves, params).transfer_seconds
        t_ref = execute(
            single_half,
            TransferParams(chunk_bytes=units.mib(4), slice_bytes=None,
                           slice_overhead_s=0.0, compute_s_per_byte=0.0),
        ).transfer_seconds
        assert t_half == pytest.approx(t_ref, rel=1e-9)

    def test_makespan_is_slowest_pipeline(self):
        ctx = make_context(num_nodes=8, k=2)
        plan = RepairPlan(
            algorithm="test", context=ctx,
            pipelines=[
                Pipeline(0, Segment(0.0, 0.5), [Edge(1, 2, 400.0), Edge(2, 0, 400.0)]),
                Pipeline(1, Segment(0.5, 1.0), [Edge(3, 4, 50.0), Edge(4, 0, 50.0)]),
            ],
        )
        params = TransferParams(chunk_bytes=units.mib(2))
        result = execute(plan, params)
        assert result.transfer_seconds == pytest.approx(max(result.pipeline_seconds))
        assert result.pipeline_seconds[1] > result.pipeline_seconds[0]

    def test_infeasible_plan_rejected(self):
        """Execution validates rates: oversubscribed plans fail loudly."""
        ctx = make_context(num_nodes=4, bw=100.0, k=2)
        plan = RepairPlan(
            algorithm="test", context=ctx,
            pipelines=[Pipeline(0, Segment(0.0, 1.0),
                                [Edge(1, 2, 200.0), Edge(2, 0, 200.0)])],
        )
        with pytest.raises(ValueError):
            execute(plan, TransferParams(chunk_bytes=1024))


class TestScalingShapes:
    """The monotonic shapes behind Experiments 4 and 5."""

    def _plan(self):
        ctx = make_context(k=2)
        return chain_plan(ctx, 100.0, [1, 2])

    def test_repair_time_decreases_with_slice_size(self):
        """Experiment 4's shape: per-slice overhead dominates small slices.

        (With a 64 MiB chunk and a protocol overhead of ~1 ms per slice,
        growing the slice monotonically reduces repair time across the
        paper's 2 KiB - 1 MiB range.)"""
        plan = self._plan()
        times = [
            execute(
                plan,
                TransferParams(chunk_bytes=units.mib(64), slice_bytes=units.kib(s),
                               slice_overhead_s=1e-3),
            ).transfer_seconds
            for s in (2, 8, 32, 128, 512, 1024)
        ]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_repair_time_increases_linearly_with_chunk_size(self):
        plan = self._plan()
        times = [
            execute(
                plan, TransferParams(chunk_bytes=units.mib(m))
            ).transfer_seconds
            for m in (4, 8, 16, 32, 64)
        ]
        assert all(a < b for a, b in zip(times, times[1:]))
        # near-linear: doubling the chunk ~doubles the time
        assert times[-1] / times[0] == pytest.approx(16, rel=0.05)


class TestDeepChains:
    def test_chain_deeper_than_recursion_limit(self):
        """RP-style path trees can exceed Python's recursion limit; the
        bottom-up sweep in ``_pipeline_makespan`` must stay iterative."""
        import sys

        depth = sys.getrecursionlimit() + 200
        ctx = make_context(num_nodes=depth + 1, k=depth)
        plan = chain_plan(ctx, rate=100.0, nodes=list(range(depth, 0, -1)))
        params = TransferParams(
            chunk_bytes=units.mib(1),
            slice_bytes=None,
            slice_overhead_s=0.0,
            compute_s_per_byte=0.0,
        )
        result = execute(plan, params)
        # store-and-forward over `depth` hops of the whole chunk
        hop = units.transfer_seconds(units.mib(1), 100.0)
        assert result.transfer_seconds == pytest.approx(depth * hop)
        assert result.bytes_moved == pytest.approx(units.mib(1) * depth)

    def test_iterative_matches_small_chain_with_overheads(self):
        """Same recurrence as before the rewrite on a small case."""
        ctx = make_context(k=3)
        plan = chain_plan(ctx, rate=200.0, nodes=[3, 2, 1])
        params = TransferParams(
            chunk_bytes=units.mib(2),
            slice_bytes=64 * units.KIB,
            slice_overhead_s=100e-6,
            compute_s_per_byte=1e-10,
        )
        result = execute(plan, params)
        assert np.isfinite(result.transfer_seconds)
        assert result.transfer_seconds > 0
        # three hops move the full segment each
        assert result.bytes_moved == pytest.approx(units.mib(2) * 3)
