"""The planning perf harness: smoke run + BENCH_planning.json schema."""

from __future__ import annotations

import json

import pytest

from benchmarks.bench_planning import SCHEMA_VERSION, run
from benchmarks.common import REPO_ROOT


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    """One smoke pass per test module (writes outside the repo tree)."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_planning.json"
    report = run(smoke=True, out_path=out)
    return report, out


class TestSchema:
    def test_file_round_trips(self, smoke_report):
        report, path = smoke_report
        assert path.exists()
        assert json.loads(path.read_text()) == json.loads(json.dumps(report))

    def test_top_level_keys(self, smoke_report):
        report, _ = smoke_report
        assert report["benchmark"] == "planning"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is True
        for key in ("planning", "plan_cache", "gf_kernels"):
            assert key in report

    def test_planning_cells(self, smoke_report):
        report, _ = smoke_report
        planning = report["planning"]
        assert "n14_k10" in planning
        for cell in planning.values():
            for algo in ("fullrepair", "fullrepair_seed", "pivotrepair", "rp"):
                stats = cell[algo]
                assert stats["median_us"] > 0
                assert stats["p99_us"] >= stats["median_us"]
                assert stats["mean_us"] > 0
                assert stats["rounds"] > 0
            assert cell["fullrepair_speedup_vs_seed"] > 1.0

    def test_fullrepair_fast_path_beats_seed_at_14_10(self, smoke_report):
        """The tentpole: a clear speedup on the largest paper code.

        The full (non-smoke) run pins >= 5x; the smoke pass uses few
        rounds on shared CI hardware, so assert a conservative floor
        rather than the headline number.
        """
        report, _ = smoke_report
        assert report["planning"]["n14_k10"]["fullrepair_speedup_vs_seed"] > 3.0

    def test_plan_cache_section(self, smoke_report):
        report, _ = smoke_report
        cache = report["plan_cache"]
        assert cache["lookups"] > 0
        assert 0.5 < cache["hit_rate"] <= 1.0
        assert cache["hit_median_us"] > 0
        assert cache["miss_median_us"] > cache["hit_median_us"]
        assert cache["hit_speedup_vs_miss"] > 1.0

    def test_gf_kernels_section(self, smoke_report):
        report, _ = smoke_report
        gf = report["gf_kernels"]
        assert gf["chunk_bytes"] > 0
        assert gf["num_chunks"] > 0
        assert gf["dot_mb_per_s"] > 0
        assert gf["matvec_mb_per_s"] > 0

    def test_committed_artifact_matches_schema(self):
        """The repo-root artefact (full run) must stay schema-valid."""
        path = REPO_ROOT / "BENCH_planning.json"
        assert path.exists(), "run `python -m benchmarks.bench_planning`"
        report = json.loads(path.read_text())
        assert report["benchmark"] == "planning"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is False
        assert report["planning"]["n14_k10"]["fullrepair_speedup_vs_seed"] >= 5.0
