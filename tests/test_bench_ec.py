"""The EC data-plane harness: smoke run, schema, and the throughput gate.

The smoke tier doubles as the tier-1 perf gate: it re-measures the
fused-vs-naive kernel speedups on 1 MiB chunks and fails if they fall
more than 20% below the ratios recorded in the committed full-run
``BENCH_ec.json``.  Ratios (not absolute MB/s) are compared so the gate
is meaningful across hosts of different speeds.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.bench_ec_throughput import SCHEMA_VERSION, run
from benchmarks.common import REPO_ROOT

pytestmark = pytest.mark.ec

#: A measured speedup may sit this far below the committed ratio before
#: the gate trips (the >20% regression line, with measurement noise
#: absorbed by median-of-rounds timing).
REGRESSION_TOLERANCE = 0.8

#: Kernel speedup ratios tracked by the gate.  ``mul_chunk`` is
#: excluded: a single-coefficient scale is memcpy-bound and its ratio is
#: too noisy to gate on.
GATED_RATIOS = (
    "dot_fused_vs_naive",
    "matvec_fused_vs_naive",
)

#: Ceiling for the integrity layer's per-chunk digest cost relative to
#: the fused decode it verifies (committed artefact, 8 MiB chunks).
DIGEST_COST_CEILING = 0.10


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    """One smoke pass per test module (writes outside the repo tree)."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_ec.json"
    report = run(smoke=True, out_path=out)
    return report, out


class TestSchema:
    def test_file_round_trips(self, smoke_report):
        report, path = smoke_report
        assert path.exists()
        assert json.loads(path.read_text()) == json.loads(json.dumps(report))

    def test_top_level_keys(self, smoke_report):
        report, _ = smoke_report
        assert report["benchmark"] == "ec"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is True
        for key in ("kernels", "rs", "speedup", "gate", "event_queue"):
            assert key in report

    def test_kernel_cells_cover_all_backends(self, smoke_report):
        report, _ = smoke_report
        for cell in report["kernels"].values():
            assert cell["chunk_bytes"] > 0
            for name in ("naive", "table", "fused", "parallel"):
                rates = cell[name]
                assert rates["dot_mb_per_s"] > 0
                assert rates["matvec_mb_per_s"] > 0
                assert rates["mul_chunk_mb_per_s"] > 0
            for key in GATED_RATIOS:
                assert cell["speedup"][key] > 0

    def test_rs_section(self, smoke_report):
        report, _ = smoke_report
        rs = report["rs"]
        assert (rs["n"], rs["k"]) == (9, 6)
        for name in ("naive", "table", "fused", "parallel"):
            rates = rs[name]
            assert rates["encode_mb_per_s"] > 0
            assert rates["decode_mb_per_s"] > 0
            assert rates["repair_mb_per_s"] > 0

    def test_fused_beats_naive_in_smoke(self, smoke_report):
        """Even the fast smoke pass must show a clear fused win.

        Sanity floors only (loose enough for host noise); the committed
        gate section carries the tracked ratios.
        """
        report, _ = smoke_report
        sp = report["speedup"]
        assert sp["dot_fused_vs_naive"] > 1.3
        assert sp["matvec_fused_vs_naive"] > 2.0
        assert sp["encode_fused_vs_naive"] > 1.5
        for key in GATED_RATIOS:
            assert report["gate"]["speedup"][key] > 1.0

    def test_event_queue_section(self, smoke_report):
        report, _ = smoke_report
        ev = report["event_queue"]
        assert ev["events"] > 0
        assert ev["batched_run_events_per_s"] > 0
        assert ev["step_loop_events_per_s"] > 0
        assert ev["batch_speedup"] > 0

    def test_checksum_section(self, smoke_report):
        report, _ = smoke_report
        ck = report["checksum"]
        assert ck["chunk_bytes"] > 0
        assert 0 < ck["slice_bytes"] <= ck["chunk_bytes"]
        assert ck["digest_mb_per_s"] > 0
        assert ck["slice_checksum_mb_per_s"] > 0
        # loose smoke sanity: even on a slow host the digest must not
        # rival the decode it guards
        assert ck["digest_cost_vs_fused_decode"] < 1.0


class TestCommittedArtifact:
    def test_committed_artifact_matches_schema(self):
        path = REPO_ROOT / "BENCH_ec.json"
        assert path.exists(), "run `python -m benchmarks.bench_ec_throughput`"
        report = json.loads(path.read_text())
        assert report["benchmark"] == "ec"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["smoke"] is False
        # headline numbers the docs quote: the fused matvec clears 10x
        # over the seed kernels and encode clears 2 GB/s in GF work units
        assert report["speedup"]["matvec_fused_vs_naive"] >= 10.0
        assert report["kernels"]["chunk_8192kib"]["fused"]["matvec_mb_per_s"] >= 2000.0

    def test_committed_digest_overhead_bounded(self):
        """Verifying a rebuilt chunk must cost <= 10% of its fused decode.

        The ratio is measured on the same host in the same run (both
        sides of the division share the machine's speed), so it is
        stable across hosts the way the fused-vs-naive ratios are.
        """
        report = json.loads((REPO_ROOT / "BENCH_ec.json").read_text())
        cost = report["checksum"]["digest_cost_vs_fused_decode"]
        assert 0 < cost <= DIGEST_COST_CEILING, (
            f"per-chunk digest costs {cost:.1%} of a fused decode "
            f"(ceiling {DIGEST_COST_CEILING:.0%})"
        )

    def test_regression_gate_vs_committed_ratios(self, smoke_report):
        """>20% drop in any gated fused-vs-naive kernel ratio fails tier-1.

        Both runs measure the ``gate`` section with the same protocol
        (1 MiB cell, median of 3 passes), so the comparison is
        like-for-like: host-speed drift cancels in the ratio, the
        median absorbs scheduling noise, and the headline ``speedup``
        section (whose ratios differ with chunk size) stays out of it.
        """
        committed = json.loads((REPO_ROOT / "BENCH_ec.json").read_text())
        fresh, _ = smoke_report
        base = committed["gate"]["speedup"]
        measured = fresh["gate"]["speedup"]
        for key in GATED_RATIOS:
            floor = base[key] * REGRESSION_TOLERANCE
            assert measured[key] >= floor, (
                f"{key} regressed: measured {measured[key]:.2f}x "
                f"vs committed {base[key]:.2f}x (floor {floor:.2f}x)"
            )
