"""Unit conversions: Mbps <-> bytes/s, transfer times."""

import pytest

from repro.net import units


class TestConversions:
    def test_mbps_to_bytes(self):
        assert units.mbps_to_bytes_per_s(8.0) == 1_000_000.0

    def test_bytes_to_mbps(self):
        assert units.bytes_per_s_to_mbps(1_000_000.0) == 8.0

    def test_roundtrip(self):
        for v in (0.5, 100.0, 937.2):
            assert units.bytes_per_s_to_mbps(units.mbps_to_bytes_per_s(v)) == pytest.approx(v)

    def test_mib(self):
        assert units.mib(1) == 1024 * 1024
        assert units.mib(64) == 64 * 1024 * 1024

    def test_kib(self):
        assert units.kib(2) == 2048

    def test_fractional_mib(self):
        assert units.mib(0.5) == 512 * 1024


class TestTransferSeconds:
    def test_basic(self):
        # 1 MB over 8 Mbps = 1 second
        assert units.transfer_seconds(1_000_000, 8.0) == pytest.approx(1.0)

    def test_zero_payload_is_instant(self):
        assert units.transfer_seconds(0, 100.0) == 0.0
        assert units.transfer_seconds(0, 0.0) == 0.0

    def test_dead_link_raises(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(100, 0.0)

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(-1, 10.0)

    def test_64mib_at_900mbps(self):
        """The paper's headline case: ~0.6 s to move a chunk at t_max."""
        t = units.transfer_seconds(units.mib(64), 900.0)
        assert 0.55 < t < 0.65
