"""Rack topology: trunk constraints, scaling, feasibility."""

import numpy as np
import pytest

from repro.core import FullRepair
from repro.net import BandwidthSnapshot, Flow, RepairContext
from repro.net.topology import (
    RackTopology,
    rack_scaled_context,
    validate_rates_with_racks,
)


@pytest.fixture
def topo():
    # 8 nodes in 2 racks of 4, 1 Gbps NICs, 2:1 oversubscription
    return RackTopology.uniform(8, 4, nic_mbps=1000.0, oversubscription=2.0)


class TestConstruction:
    def test_uniform_layout(self, topo):
        assert topo.num_nodes == 8
        assert topo.num_racks == 2
        assert topo.nodes_in(0) == [0, 1, 2, 3]
        assert topo.trunk_mbps == (2000.0, 2000.0)

    def test_same_rack(self, topo):
        assert topo.same_rack(0, 3)
        assert not topo.same_rack(0, 4)

    def test_ragged_last_rack(self):
        topo = RackTopology.uniform(10, 4)
        assert topo.num_racks == 3
        assert topo.nodes_in(2) == [8, 9]

    def test_validation(self):
        with pytest.raises(ValueError):
            RackTopology(rack_of=(0, 5), trunk_mbps=(100.0,))
        with pytest.raises(ValueError):
            RackTopology(rack_of=(0,), trunk_mbps=(0.0,))
        with pytest.raises(ValueError):
            RackTopology.uniform(8, 4, oversubscription=0)


class TestRackLoads:
    def test_intra_rack_exempt(self, topo):
        flows = [Flow(0, 1), Flow(2, 3)]
        egress, ingress = topo.rack_loads(flows, [500.0, 500.0])
        assert not egress.any() and not ingress.any()

    def test_cross_rack_counted_both_sides(self, topo):
        flows = [Flow(0, 4)]
        egress, ingress = topo.rack_loads(flows, [300.0])
        assert egress[0] == 300.0 and ingress[1] == 300.0
        assert egress[1] == 0.0 and ingress[0] == 0.0

    def test_max_feasible_scale(self, topo):
        flows = [Flow(i, 4) for i in range(4)]  # 4 cross-rack flows
        rates = [800.0] * 4  # 3200 egress vs 2000 trunk
        assert topo.max_feasible_scale(flows, rates) == pytest.approx(2000 / 3200)

    def test_feasible_scale_capped_at_one(self, topo):
        assert topo.max_feasible_scale([Flow(0, 4)], [10.0]) == 1.0


class TestValidation:
    def test_accepts_trunk_feasible(self, topo):
        snap = BandwidthSnapshot.uniform(8, 1000.0)
        flows = [Flow(0, 4), Flow(1, 5)]
        validate_rates_with_racks(snap, topo, flows, [900.0, 900.0])

    def test_rejects_trunk_violation(self, topo):
        snap = BandwidthSnapshot.uniform(8, 1000.0)
        flows = [Flow(i, 4 + i) for i in range(4)]
        with pytest.raises(ValueError, match="trunk"):
            validate_rates_with_racks(snap, topo, flows, [700.0] * 4)

    def test_node_check_still_applies(self, topo):
        snap = BandwidthSnapshot.uniform(8, 100.0)
        with pytest.raises(ValueError, match="uplink"):
            validate_rates_with_racks(snap, topo, [Flow(0, 4)], [200.0])

    def test_size_mismatch(self, topo):
        snap = BandwidthSnapshot.uniform(5, 100.0)
        with pytest.raises(ValueError, match="mismatch"):
            validate_rates_with_racks(snap, topo, [], [])


class TestRackScaledContext:
    def test_scaled_plans_are_trunk_feasible(self, topo):
        """The conservative workaround: plans computed on the scaled
        context always pass the full two-tier validation."""
        snap = BandwidthSnapshot.uniform(8, 1000.0)
        ctx = RepairContext(
            snapshot=snap, requester=0, helpers=tuple(range(1, 8)), k=4
        )
        scaled = rack_scaled_context(ctx, topo)
        plan = FullRepair().schedule(scaled)
        flows, rates = plan.flows()
        validate_rates_with_racks(snap, topo, flows, rates)

    def test_oblivious_plans_can_violate_trunks(self):
        """Without scaling, a rack-oblivious FullRepair plan can exceed a
        heavily oversubscribed trunk — the gap the workaround closes."""
        topo = RackTopology.uniform(8, 4, oversubscription=8.0)  # 500 Mbps trunk
        snap = BandwidthSnapshot.uniform(8, 1000.0)
        ctx = RepairContext(
            snapshot=snap, requester=0, helpers=tuple(range(1, 8)), k=4
        )
        plan = FullRepair().schedule(ctx)
        flows, rates = plan.flows()
        with pytest.raises(ValueError, match="trunk"):
            validate_rates_with_racks(snap, topo, flows, rates)
        scale = topo.max_feasible_scale(flows, rates)
        assert scale < 1.0

    def test_scaling_preserves_roles(self, topo):
        snap = BandwidthSnapshot.uniform(8, 1000.0)
        ctx = RepairContext(
            snapshot=snap, requester=2, helpers=(0, 1, 3, 4, 5), k=3,
            chunk_index={0: 1, 1: 2, 3: 3, 4: 4, 5: 5},
        )
        scaled = rack_scaled_context(ctx, topo)
        assert scaled.requester == 2
        assert scaled.helpers == ctx.helpers
        assert scaled.chunk_index == ctx.chunk_index

    def test_scaled_bandwidth_is_fair_share(self, topo):
        snap = BandwidthSnapshot.uniform(8, 1000.0)
        ctx = RepairContext(
            snapshot=snap, requester=0, helpers=tuple(range(1, 8)), k=4
        )
        scaled = rack_scaled_context(ctx, topo)
        # trunk 2000 over 4 members = 500 each
        assert (scaled.snapshot.uplink == 500.0).all()

    def test_mismatch_rejected(self, topo):
        snap = BandwidthSnapshot.uniform(5, 100.0)
        ctx = RepairContext(snapshot=snap, requester=0, helpers=(1, 2, 3), k=2)
        with pytest.raises(ValueError):
            rack_scaled_context(ctx, topo)
