"""Max-min fair flow allocation and rate validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import BandwidthSnapshot, Flow, max_min_rates, validate_rates


class TestFlowValidation:
    def test_self_loop_raises(self):
        with pytest.raises(ValueError):
            Flow(src=1, dst=1)

    def test_negative_demand_raises(self):
        with pytest.raises(ValueError):
            Flow(src=0, dst=1, demand=-5.0)

    def test_bad_weight_raises(self):
        with pytest.raises(ValueError):
            Flow(src=0, dst=1, weight=0.0)


class TestMaxMin:
    def test_empty(self):
        snap = BandwidthSnapshot.uniform(2, 100.0)
        assert max_min_rates(snap, []).shape == (0,)

    def test_single_flow_bottleneck(self):
        snap = BandwidthSnapshot(
            uplink=np.array([40.0, 100.0]), downlink=np.array([100.0, 70.0])
        )
        rates = max_min_rates(snap, [Flow(0, 1)])
        assert rates[0] == pytest.approx(40.0)  # sender uplink binds

    def test_shared_downlink_split_evenly(self):
        snap = BandwidthSnapshot.uniform(4, 300.0)
        flows = [Flow(src=i, dst=0) for i in (1, 2, 3)]
        rates = max_min_rates(snap, flows)
        assert np.allclose(rates, 100.0)

    def test_demand_cap(self):
        snap = BandwidthSnapshot.uniform(2, 100.0)
        rates = max_min_rates(snap, [Flow(0, 1, demand=25.0)])
        assert rates[0] == pytest.approx(25.0)

    def test_released_capacity_goes_to_others(self):
        """A demand-capped flow frees headroom for its sharers."""
        snap = BandwidthSnapshot.uniform(3, 90.0)
        flows = [Flow(1, 0, demand=10.0), Flow(2, 0)]
        rates = max_min_rates(snap, flows)
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(80.0)

    def test_weights_bias_shares(self):
        snap = BandwidthSnapshot.uniform(3, 90.0)
        flows = [Flow(1, 0, weight=2.0), Flow(2, 0, weight=1.0)]
        rates = max_min_rates(snap, flows)
        assert rates[0] == pytest.approx(60.0)
        assert rates[1] == pytest.approx(30.0)

    def test_zero_capacity_node(self):
        snap = BandwidthSnapshot(
            uplink=np.array([0.0, 100.0]), downlink=np.array([100.0, 100.0])
        )
        rates = max_min_rates(snap, [Flow(0, 1)])
        assert rates[0] == 0.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_allocation_always_feasible(self, seed):
        """Whatever the topology, the result respects every capacity."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 8))
        snap = BandwidthSnapshot(
            uplink=rng.uniform(0, 500, n), downlink=rng.uniform(0, 500, n)
        )
        flows = []
        for _ in range(int(rng.integers(1, 10))):
            a, b = rng.choice(n, 2, replace=False)
            demand = float(rng.uniform(1, 400)) if rng.random() < 0.5 else None
            flows.append(Flow(int(a), int(b), demand=demand))
        rates = max_min_rates(snap, flows)
        validate_rates(snap, flows, rates)  # must not raise
        assert (rates >= 0).all()

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_allocation_is_maximal(self, seed):
        """No single flow can be raised without breaking a constraint."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        snap = BandwidthSnapshot(
            uplink=rng.uniform(10, 500, n), downlink=rng.uniform(10, 500, n)
        )
        flows = []
        for _ in range(int(rng.integers(1, 6))):
            a, b = rng.choice(n, 2, replace=False)
            flows.append(Flow(int(a), int(b)))
        rates = max_min_rates(snap, flows)
        bump = rates.copy()
        eps = 1.0
        for i in range(len(flows)):
            bump = rates.copy()
            bump[i] += eps
            with pytest.raises(ValueError):
                validate_rates(snap, flows, bump)


class TestValidateRates:
    def test_accepts_feasible(self):
        snap = BandwidthSnapshot.uniform(2, 100.0)
        validate_rates(snap, [Flow(0, 1)], [99.9999])

    def test_rejects_uplink_violation(self):
        snap = BandwidthSnapshot(
            uplink=np.array([50.0, 100.0]), downlink=np.array([100.0, 100.0])
        )
        with pytest.raises(ValueError, match="uplink"):
            validate_rates(snap, [Flow(0, 1)], [51.0])

    def test_rejects_downlink_violation(self):
        snap = BandwidthSnapshot(
            uplink=np.array([100.0, 100.0]), downlink=np.array([100.0, 50.0])
        )
        with pytest.raises(ValueError, match="downlink"):
            validate_rates(snap, [Flow(0, 1)], [51.0])

    def test_rejects_negative_rate(self):
        snap = BandwidthSnapshot.uniform(2, 100.0)
        with pytest.raises(ValueError):
            validate_rates(snap, [Flow(0, 1)], [-1.0])

    def test_rejects_misaligned_rates(self):
        snap = BandwidthSnapshot.uniform(2, 100.0)
        with pytest.raises(ValueError):
            validate_rates(snap, [Flow(0, 1)], [1.0, 2.0])

    def test_aggregates_multiple_flows_per_node(self):
        snap = BandwidthSnapshot.uniform(3, 100.0)
        flows = [Flow(0, 1), Flow(0, 2)]
        validate_rates(snap, flows, [50.0, 50.0])
        with pytest.raises(ValueError):
            validate_rates(snap, flows, [60.0, 60.0])


class TestSaturationToleranceRegression:
    """Progressive filling must not stall on capacity-scale rounding.

    The old freeze test used absolute 1e-12 slack, below one float ulp at
    Mbps->Gbps scale: a demand cap whose fair-share round-trip
    ``w * (d / w)`` lands a few ulps under ``d`` froze *every* active
    flow at the capped level via the stalemate fallback.
    """

    def test_demand_roundtrip_does_not_stall_elastic_flow(self):
        # chosen so w * (d / w) < d - 1e-12 (verified below): the old
        # absolute check missed the cap and stalemated the whole round
        weight, demand = 7.0, 999999.6
        assert weight * (demand / weight) < demand - 1e-12
        snap = BandwidthSnapshot(
            uplink=np.array([1e9, 1e9, 0.0, 0.0]),
            downlink=np.array([0.0, 0.0, 1e9, 1e9]),
        )
        flows = [Flow(0, 2, demand=demand, weight=weight), Flow(1, 3)]
        rates = max_min_rates(snap, flows)
        assert rates[0] == pytest.approx(demand, rel=1e-9)
        assert rates[1] == pytest.approx(1e9, rel=1e-9)  # not frozen at 1.4e5

    def test_near_equal_capacities_at_gbps_scale(self):
        caps = np.array([1e9, 1e9 * (1 + 3e-13), 1e9 * (1 - 2e-13), 3e9])
        snap = BandwidthSnapshot(
            uplink=np.concatenate([caps, np.zeros(4)]),
            downlink=np.concatenate([np.zeros(4), np.full(4, 1e10)]),
        )
        flows = [Flow(i, 4 + i) for i in range(4)]
        rates = max_min_rates(snap, flows)
        np.testing.assert_allclose(rates, caps, rtol=1e-9)
        validate_rates(snap, flows, rates)

    def test_near_equal_shared_uplink_fair_split(self):
        snap = BandwidthSnapshot(
            uplink=np.array([1e9 * (1 + 1e-13), 0.0, 0.0]),
            downlink=np.array([0.0, 1e10, 1e10]),
        )
        flows = [Flow(0, 1), Flow(0, 2)]
        rates = max_min_rates(snap, flows)
        np.testing.assert_allclose(rates, [5e8, 5e8], rtol=1e-9)
