"""Bandwidth snapshots and repair contexts."""

import numpy as np
import pytest

from repro.net import BandwidthSnapshot, RepairContext


class TestSnapshot:
    def test_basic_properties(self, fig2_snapshot):
        assert fig2_snapshot.num_nodes == 5
        assert len(fig2_snapshot) == 5
        assert fig2_snapshot.uplink[2] == 960.0
        assert fig2_snapshot.downlink[2] == 1000.0

    def test_immutable_arrays(self, fig2_snapshot):
        with pytest.raises(ValueError):
            fig2_snapshot.uplink[0] = 5.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            BandwidthSnapshot(uplink=np.ones(3), downlink=np.ones(4))

    def test_negative_bandwidth_raises(self):
        with pytest.raises(ValueError):
            BandwidthSnapshot(uplink=np.array([-1.0]), downlink=np.array([1.0]))

    def test_symmetric_constructor(self):
        s = BandwidthSnapshot.symmetric([100.0, 200.0])
        assert np.array_equal(s.uplink, s.downlink)
        assert s.uplink[1] == 200.0

    def test_uniform_constructor(self):
        s = BandwidthSnapshot.uniform(4, 500.0)
        assert s.num_nodes == 4
        assert (s.uplink == 500.0).all() and (s.downlink == 500.0).all()

    def test_restrict(self, fig2_snapshot):
        sub = fig2_snapshot.restrict([2, 4])
        assert sub.num_nodes == 2
        assert sub.uplink[0] == 960.0
        assert sub.uplink[1] == 600.0

    def test_cv_uniform_is_zero(self):
        assert BandwidthSnapshot.uniform(8, 300.0).cv() == 0.0

    def test_cv_directions(self, fig2_snapshot):
        up = fig2_snapshot.cv(direction="uplink")
        down = fig2_snapshot.cv(direction="downlink")
        mean = fig2_snapshot.cv(direction="mean")
        assert up > 0 and down > 0 and mean > 0
        assert down > up  # downlinks are more skewed in Fig. 2

    def test_cv_zero_mean(self):
        assert BandwidthSnapshot.uniform(4, 0.0).cv() == 0.0

    def test_cv_unknown_direction(self, fig2_snapshot):
        with pytest.raises(ValueError):
            fig2_snapshot.cv(direction="sideways")


class TestRepairContext:
    def test_valid(self, fig2_context):
        assert fig2_context.num_helpers == 4
        assert fig2_context.k == 3
        assert fig2_context.uplink(2) == 960.0
        assert fig2_context.downlink(0) == 1000.0

    def test_requester_among_helpers_raises(self, fig2_snapshot):
        with pytest.raises(ValueError):
            RepairContext(snapshot=fig2_snapshot, requester=1, helpers=(1, 2, 3), k=3)

    def test_duplicate_helpers_raise(self, fig2_snapshot):
        with pytest.raises(ValueError):
            RepairContext(snapshot=fig2_snapshot, requester=0, helpers=(1, 1, 2), k=2)

    def test_out_of_range_ids_raise(self, fig2_snapshot):
        with pytest.raises(ValueError):
            RepairContext(snapshot=fig2_snapshot, requester=9, helpers=(1, 2, 3), k=3)

    def test_too_few_helpers_raise(self, fig2_snapshot):
        with pytest.raises(ValueError):
            RepairContext(snapshot=fig2_snapshot, requester=0, helpers=(1, 2), k=3)

    def test_k_must_be_positive(self, fig2_snapshot):
        with pytest.raises(ValueError):
            RepairContext(snapshot=fig2_snapshot, requester=0, helpers=(1, 2, 3), k=0)

    def test_helpers_coerced_to_ints(self, fig2_snapshot):
        ctx = RepairContext(
            snapshot=fig2_snapshot, requester=0, helpers=(np.int64(1), 2, 3), k=3
        )
        assert all(isinstance(h, int) for h in ctx.helpers)
