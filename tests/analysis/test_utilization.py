"""Table-I bandwidth-resource decomposition."""

import numpy as np
import pytest

from repro.analysis import UtilizationBreakdown, mean_breakdown, plan_utilization
from repro.core import FullRepair
from repro.net import BandwidthSnapshot, RepairContext
from repro.repair import PivotRepair, RepairPipelining
from tests.conftest import random_context


class TestBreakdown:
    def test_ratios_must_sum_to_one(self):
        with pytest.raises(ValueError):
            UtilizationBreakdown(0.5, 0.2, 0.1)

    def test_headline_metric(self):
        b = UtilizationBreakdown(0.7, 0.2, 0.1)
        assert b.bandwidth_utilization == 0.7

    def test_mean_breakdown(self):
        a = UtilizationBreakdown(0.6, 0.3, 0.1)
        b = UtilizationBreakdown(0.8, 0.1, 0.1)
        m = mean_breakdown([a, b])
        assert m.selected_used == pytest.approx(0.7)
        assert m.unselected == pytest.approx(0.2)

    def test_mean_breakdown_empty_raises(self):
        with pytest.raises(ValueError):
            mean_breakdown([])


class TestPlanUtilization:
    def test_single_pipeline_leaves_unselected(self, fig2_context):
        plan = RepairPipelining().schedule(fig2_context)
        b = plan_utilization(plan)
        # RP uses 3 of 4 helpers; the 4th node's uplink is "unselected"
        assert b.unselected > 0
        assert b.selected_used + b.unselected + b.selected_unused == pytest.approx(1.0)

    def test_fig2_rp_utilization(self, fig2_context):
        """RP at 300 Mbps: 3 senders x 300 over 2760 total = ~32.6%."""
        plan = RepairPipelining().schedule(fig2_context)
        b = plan_utilization(plan)
        assert b.selected_used == pytest.approx(3 * 300 / 2760, rel=1e-6)

    def test_fullrepair_has_no_unselected(self, fig2_context):
        plan = FullRepair().schedule(fig2_context)
        b = plan_utilization(plan)
        assert b.unselected == pytest.approx(0.0, abs=1e-9)

    def test_fullrepair_utilization_dominates(self):
        """FullRepair's bandwidth utilisation >= any single pipeline's
        (Table I's motivation)."""
        rng = np.random.default_rng(41)
        wins = 0
        total = 0
        for _ in range(60):
            ctx = random_context(rng, min_nodes=8, max_nodes=14, max_k=6)
            try:
                fr = plan_utilization(FullRepair().schedule(ctx))
                pv = plan_utilization(PivotRepair().schedule(ctx))
            except ValueError:
                continue
            total += 1
            if fr.bandwidth_utilization >= pv.bandwidth_utilization - 1e-9:
                wins += 1
        assert total > 40
        assert wins == total

    def test_zero_bandwidth_rejected(self):
        snap = BandwidthSnapshot(uplink=np.zeros(4), downlink=np.full(4, 10.0))
        ctx = RepairContext(snapshot=snap, requester=0, helpers=(1, 2, 3), k=2)
        from repro.ec.slicing import Segment
        from repro.repair.plan import Edge, Pipeline, RepairPlan

        plan = RepairPlan(
            "t", ctx,
            [Pipeline(0, Segment(0, 1), [Edge(1, 2, 1.0), Edge(2, 0, 1.0)])],
        )
        with pytest.raises(ValueError):
            plan_utilization(plan)
