"""Durability Monte-Carlo."""

import pytest

from repro.analysis import (
    compare_durability,
    render_durability,
    simulate_durability,
)

FAST = dict(
    num_nodes=12,
    n=6,
    k=4,
    num_stripes=24,
    mttf_hours=24.0 * 20,
    horizon_hours=24.0 * 120,
    trials=60,
    seed=5,
)


class TestSimulate:
    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_durability(repair_seconds=0.0, **FAST)
        bad = dict(FAST, trials=0)
        with pytest.raises(ValueError):
            simulate_durability(repair_seconds=10.0, **bad)

    def test_deterministic(self):
        a = simulate_durability(repair_seconds=3600.0, **FAST)
        b = simulate_durability(repair_seconds=3600.0, **FAST)
        assert a == b

    def test_paired_failure_streams(self):
        """Different repair speeds face identical failure histories up to
        down-time absorption, so failure counts are close and exposure
        moves with repair time."""
        fast = simulate_durability(repair_seconds=1800.0, **FAST)
        slow = simulate_durability(repair_seconds=24 * 3600.0, **FAST)
        assert fast.mean_exposed_stripe_hours < slow.mean_exposed_stripe_hours
        assert fast.loss_probability <= slow.loss_probability

    def test_instant_repair_never_loses(self):
        res = simulate_durability(repair_seconds=1.0, **FAST)
        assert res.loss_probability == 0.0
        assert res.mean_exposed_stripe_hours < 1.0

    def test_never_repairing_loses_often(self):
        res = simulate_durability(repair_seconds=1e9, **FAST)
        assert res.loss_probability > 0.5

    def test_loss_probability_monotone_in_repair_time(self):
        times = [3600.0 * h for h in (1, 24, 24 * 7, 24 * 30)]
        probs = [
            simulate_durability(repair_seconds=t, **FAST).loss_probability
            for t in times
        ]
        assert all(a <= b + 1e-9 for a, b in zip(probs, probs[1:]))


class TestCompareAndRender:
    def test_compare_keys(self):
        res = compare_durability({"a": 3600.0, "b": 7200.0}, **FAST)
        assert set(res) == {"a", "b"}

    def test_render(self):
        res = compare_durability({"a": 3600.0, "b": 7200.0}, **FAST)
        text = render_durability(res)
        assert "P(loss)" in text and "a" in text and "b" in text
