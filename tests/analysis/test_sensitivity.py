"""Model-constant sensitivity sweep."""

import pytest

from repro.analysis import render_sensitivity, sensitivity_sweep
from repro.analysis.sensitivity import SensitivityPoint


@pytest.fixture(scope="module")
def points():
    return sensitivity_sweep(
        overheads_s=(0.0, 500e-6),
        compute_costs=(0.0, 1e-9),
        chunk_bytes=8 * 1024 * 1024,
        algorithm_kwargs={"ppt": {"max_emulations": 100}},
    )


class TestSweep:
    def test_grid_size(self, points):
        assert len(points) == 4

    def test_all_algorithms_present(self, points):
        for p in points:
            assert set(p.times) == {"rp", "ppt", "pivotrepair", "fullrepair"}

    def test_ordering_holds_across_grid(self, points):
        assert all(p.ordering_holds for p in points)

    def test_margin_above_one(self, points):
        assert all(p.fullrepair_margin > 1.0 for p in points)

    def test_overhead_compresses_margin(self, points):
        """More per-slice overhead (paid equally by all) shrinks ratios."""
        no_ovh = [p for p in points if p.slice_overhead_s == 0.0]
        ovh = [p for p in points if p.slice_overhead_s > 0.0]
        assert max(p.fullrepair_margin for p in ovh) <= max(
            p.fullrepair_margin for p in no_ovh
        ) + 1e-9

    def test_render(self, points):
        text = render_sensitivity(points)
        assert "holds" in text and "BROKEN" not in text


class TestPointProperties:
    def test_ordering_detects_violation(self):
        p = SensitivityPoint(
            slice_overhead_s=0.0,
            compute_s_per_byte=0.0,
            times={"rp": 1.0, "ppt": 2.0, "pivotrepair": 2.0, "fullrepair": 3.0},
        )
        assert not p.ordering_holds

    def test_margin_formula(self):
        p = SensitivityPoint(
            slice_overhead_s=0.0,
            compute_s_per_byte=0.0,
            times={"rp": 4.0, "ppt": 3.0, "pivotrepair": 3.0, "fullrepair": 2.0},
        )
        assert p.fullrepair_margin == pytest.approx(1.5)
        assert p.ordering_holds
