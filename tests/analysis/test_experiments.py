"""Experiment runners: sampling, comparisons, sweeps, Table I."""

import numpy as np
import pytest

from repro.analysis import (
    chunk_size_sweep,
    compare_algorithms,
    fixed_uneven_snapshot,
    make_fixed_context,
    repair_time_experiment,
    sample_contexts,
    slice_size_sweep,
    utilization_experiment,
)
from repro.net import units
from repro.workloads import make_trace

FAST_KWARGS = {"ppt": {"max_emulations": 200}}


class TestSampling:
    def test_sample_contexts_shape(self):
        trace = make_trace("tpcds", num_snapshots=300, seed=1)
        ctxs = sample_contexts(trace, 9, 6, 10, seed=2)
        assert len(ctxs) == 10
        for ctx in ctxs:
            assert ctx.num_helpers == 8
            assert ctx.k == 6
            assert ctx.requester not in ctx.helpers

    def test_sample_deterministic(self):
        trace = make_trace("tpcds", num_snapshots=300, seed=1)
        a = sample_contexts(trace, 6, 4, 5, seed=3)
        b = sample_contexts(trace, 6, 4, 5, seed=3)
        assert all(
            x.requester == y.requester and x.helpers == y.helpers
            for x, y in zip(a, b)
        )

    def test_too_small_trace_raises(self):
        trace = make_trace("tpcds", num_nodes=8, num_snapshots=50, seed=1)
        with pytest.raises(ValueError):
            sample_contexts(trace, 9, 6, 3)

    def test_chunk_index_populated(self):
        trace = make_trace("tpcds", num_snapshots=100, seed=1)
        ctx = sample_contexts(trace, 6, 4, 1, seed=4)[0]
        assert set(ctx.chunk_index) == set(ctx.helpers)
        assert sorted(ctx.chunk_index.values()) == [1, 2, 3, 4, 5]


class TestComparison:
    def test_compare_all_algorithms(self):
        trace = make_trace("tpcds", num_snapshots=300, seed=5)
        ctxs = sample_contexts(trace, 6, 4, 3, seed=6)
        timings = compare_algorithms(
            ctxs,
            algorithms=("rp", "pivotrepair", "fullrepair"),
        )
        assert set(timings) == {"rp", "pivotrepair", "fullrepair"}
        for series in timings.values():
            assert len(series) == 3
            for t in series:
                assert t.calc > 0 and t.transfer > 0
                assert t.overall == t.calc + t.transfer

    def test_repair_time_experiment_means(self):
        r = repair_time_experiment(
            workload="swim", n=6, k=4, num_samples=4, num_snapshots=300,
            seed=7, algorithm_kwargs=FAST_KWARGS,
        )
        assert r.mean_overall("fullrepair") > 0
        assert r.mean_transfer("rp") >= r.mean_transfer("fullrepair")

    def test_reduction_vs(self):
        r = repair_time_experiment(
            workload="swim", n=6, k=4, num_samples=4, num_snapshots=300,
            seed=7, algorithm_kwargs=FAST_KWARGS,
        )
        red = r.reduction_vs("fullrepair", "rp", "transfer")
        assert 0.0 <= red < 1.0

    def test_reduction_unknown_metric(self):
        r = repair_time_experiment(
            workload="swim", n=6, k=4, num_samples=2, num_snapshots=300,
            seed=7, algorithm_kwargs=FAST_KWARGS,
        )
        with pytest.raises(KeyError):
            r.reduction_vs("fullrepair", "rp", "banana")


class TestFixedContext:
    def test_snapshot_deterministic(self):
        a = fixed_uneven_snapshot(seed=11)
        b = fixed_uneven_snapshot(seed=11)
        assert np.array_equal(a.uplink, b.uplink)

    def test_snapshot_is_uneven(self):
        snap = fixed_uneven_snapshot()
        assert snap.cv(direction="mean") > 0.25

    def test_context_valid(self):
        ctx = make_fixed_context(6, 4)
        assert ctx.num_helpers == 5 and ctx.k == 4


class TestSweeps:
    def test_slice_size_sweep_shape(self):
        out = slice_size_sweep(
            slice_sizes_bytes=(units.kib(8), units.kib(64), units.kib(256)),
            algorithms=("rp", "fullrepair"),
            chunk_bytes=units.mib(8),
        )
        assert set(out) == {"rp", "fullrepair"}
        for series in out.values():
            assert len(series) == 3

    def test_slice_sweep_fullrepair_fastest(self):
        out = slice_size_sweep(
            slice_sizes_bytes=(units.kib(16), units.kib(128)),
            algorithms=("rp", "pivotrepair", "fullrepair"),
            chunk_bytes=units.mib(8),
        )
        for sb in (units.kib(16), units.kib(128)):
            assert out["fullrepair"][sb] <= out["rp"][sb]
            assert out["fullrepair"][sb] <= out["pivotrepair"][sb]

    def test_chunk_size_sweep_monotone(self):
        out = chunk_size_sweep(
            chunk_sizes_bytes=(units.mib(4), units.mib(16), units.mib(64)),
            algorithms=("fullrepair",),
        )
        times = [out["fullrepair"][units.mib(m)] for m in (4, 16, 64)]
        assert times[0] < times[1] < times[2]


class TestUtilizationExperiment:
    def test_structure_and_trend(self):
        table = utilization_experiment(
            num_snapshots=800,
            samples_per_workload=120,
            seed=3,
            algorithms=("rp", "pivotrepair", "fullrepair"),
        )
        assert table.cells, "no buckets populated"
        for bucket, algs in table.cells.items():
            for name, bkd in algs.items():
                total = bkd.selected_used + bkd.unselected + bkd.selected_unused
                assert total == pytest.approx(1.0, abs=1e-6)
        # FullRepair's utilisation beats RP's in every populated bucket
        for bucket, algs in table.cells.items():
            if "rp" in algs and "fullrepair" in algs:
                assert (
                    algs["fullrepair"].bandwidth_utilization
                    >= algs["rp"].bandwidth_utilization - 1e-9
                )


class TestSamplingEdgeCases:
    def test_uncongested_sampling(self):
        from repro.workloads import Trace
        import numpy as np

        flat = Trace(
            workload="flat", capacity_mbps=1000.0,
            uplink=np.full((50, 10), 900.0), downlink=np.full((50, 10), 900.0),
        )
        # nothing is congested: congested_only must fail loudly...
        with pytest.raises(ValueError, match="congested"):
            sample_contexts(flat, 6, 4, 2, congested_only=True)
        # ...and the explicit opt-out must work
        ctxs = sample_contexts(flat, 6, 4, 2, congested_only=False)
        assert len(ctxs) == 2

    def test_paper_constants(self):
        from repro.analysis import PAPER_ALGORITHMS, PAPER_CODES

        assert PAPER_CODES == ((6, 4), (9, 6), (12, 8), (14, 10))
        assert PAPER_ALGORITHMS == ("rp", "ppt", "pivotrepair", "fullrepair")
