"""Controlled C_v sweep."""

import numpy as np
import pytest

from repro.analysis import (
    achieved_cv,
    controlled_cv_snapshot,
    heterogeneity_sweep,
    render_heterogeneity,
)


class TestControlledSnapshot:
    @pytest.mark.parametrize("target", [0.0, 0.1, 0.25, 0.4])
    def test_hits_target_cv(self, target):
        snap = controlled_cv_snapshot(16, target, seed=3)
        assert achieved_cv(snap) == pytest.approx(target, abs=0.03)

    def test_mean_preserved(self):
        snap = controlled_cv_snapshot(16, 0.3, mean_mbps=500.0, seed=4)
        mean = (snap.uplink + snap.downlink).mean() / 2
        assert mean == pytest.approx(500.0, rel=0.05)

    def test_within_capacity(self):
        snap = controlled_cv_snapshot(16, 0.5, seed=5)
        assert (snap.uplink <= 1000.0).all() and (snap.uplink >= 10.0).all()

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            controlled_cv_snapshot(8, -0.1)

    def test_deterministic(self):
        a = controlled_cv_snapshot(12, 0.2, seed=9)
        b = controlled_cv_snapshot(12, 0.2, seed=9)
        assert np.array_equal(a.uplink, b.uplink)

    def test_extreme_target_clipped_not_crashed(self):
        snap = controlled_cv_snapshot(8, 5.0, seed=1)
        assert achieved_cv(snap) < 5.0  # clipping dampens, but valid


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return heterogeneity_sweep(
            cv_targets=(0.0, 0.2, 0.4),
            samples_per_point=5,
            seed=2,
        )

    def test_point_structure(self, points):
        assert len(points) == 3
        for p in points:
            assert set(p.rates) == {"rp", "pivotrepair", "fullrepair"}
            assert all(r > 0 for r in p.rates.values())

    def test_single_pipeline_degrades_with_cv(self, points):
        """Conclusion 2: unevenness starves single pipelines."""
        rp = [p.rates["rp"] for p in points]
        assert rp[0] > rp[-1]

    def test_fullrepair_gap_widens_with_cv(self, points):
        """The multi-pipeline advantage grows with unevenness."""
        gap = [p.rates["fullrepair"] / p.rates["rp"] for p in points]
        assert gap[-1] > gap[0]

    def test_fullrepair_dominates_everywhere(self, points):
        for p in points:
            assert p.rates["fullrepair"] >= p.rates["rp"] - 1e-9
            assert p.rates["fullrepair"] >= p.rates["pivotrepair"] - 1e-9

    def test_render(self, points):
        text = render_heterogeneity(points)
        assert "unevenness" in text
        assert "fullrepair" in text
        assert render_heterogeneity([]) == "no sweep points"
