"""Paper-style report rendering."""

import pytest

from repro.analysis import (
    render_comparison,
    render_reductions,
    render_sweep,
    render_utilization_table,
    repair_time_experiment,
    utilization_experiment,
)
from repro.net import units

FAST = {"ppt": {"max_emulations": 100}}


@pytest.fixture(scope="module")
def result():
    return repair_time_experiment(
        workload="swim", n=6, k=4, num_samples=3, num_snapshots=300,
        seed=13, algorithm_kwargs=FAST,
    )


class TestRenderComparison:
    def test_contains_all_algorithms(self, result):
        text = render_comparison([result])
        for label in ("RP", "PPT", "PivotRepair", "FullRepair"):
            assert label in text

    def test_metric_selector(self, result):
        assert "calc" in render_comparison([result], metric="calc")
        with pytest.raises(KeyError):
            render_comparison([result], metric="nope")

    def test_workload_and_nk_shown(self, result):
        text = render_comparison([result])
        assert "swim" in text and "(6,4)" in text


class TestRenderReductions:
    def test_mentions_baselines(self, result):
        text = render_reductions([result])
        assert "vs" in text and "%" in text
        assert "RP" in text


class TestRenderSweep:
    def test_units_formatting(self):
        series = {
            "fullrepair": {units.kib(2): 1.0, units.mib(1): 2.0},
            "rp": {units.kib(2): 3.0, units.mib(1): 4.0},
        }
        text = render_sweep(series, "slice size")
        assert "2 KiB" in text and "1 MiB" in text
        assert "FullRepair" in text


class TestRenderUtilization:
    def test_table_renders(self):
        table = utilization_experiment(
            num_snapshots=400, samples_per_workload=60, seed=5,
            algorithms=("rp", "fullrepair"),
        )
        text = render_utilization_table(table)
        assert "Table I" in text
        assert "Cv" in text
        assert "%" not in text or True  # columns are percent-scaled values
