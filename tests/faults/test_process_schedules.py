"""The `process=` hook on random fault schedules.

Two contracts: (1) lifetime processes can re-time chaos schedules
through the existing seeded-stream machinery, and (2) the hook's mere
existence must not perturb a single byte of any legacy schedule —
``process=None`` replays the fixture captured before the hook existed.
"""

import json
from pathlib import Path

import pytest

from repro.faults import FaultInjector
from repro.lifetime import ExponentialProcess, TraceProcess, WeibullProcess

FIXTURE = Path(__file__).parent / "data" / "legacy_schedules.json"

SCHEDULE_KW = dict(
    nodes=range(14), horizon_s=2.0, max_faults=4, protected=(0,)
)


def test_legacy_schedules_byte_identical():
    """Every pre-hook seed replays exactly, with and without corruption."""
    fixture = json.loads(FIXTURE.read_text())
    assert len(fixture) == 128
    for key, expected in fixture.items():
        parts = dict(p.split("=") for p in key.split())
        inj = FaultInjector.random_schedule(
            int(parts["seed"]),
            corruption=parts["corruption"] == "True",
            **SCHEDULE_KW,
        )
        assert [repr(f) for f in inj.faults] == expected, key


@pytest.mark.parametrize(
    "process",
    [
        ExponentialProcess(mttf_s=5.0, mttr_s=1.0),
        WeibullProcess(shape=0.7, scale_s=5.0, mttr_s=1.0),
        WeibullProcess(shape=3.0, scale_s=5.0, mttr_s=1.0),
        TraceProcess(lifetimes_s=(0.25, 0.5, 1.9, 7.0), downtimes_s=(1.0,)),
    ],
)
def test_process_retimes_without_touching_structure(process):
    """Same nodes/kinds/parameters; only the fault times change hands."""
    for seed in range(16):
        base = FaultInjector.random_schedule(seed, **SCHEDULE_KW)
        timed = FaultInjector.random_schedule(
            seed, process=process, **SCHEDULE_KW
        )
        strip = lambda faults: sorted(
            (type(f).__name__, f.node) for f in faults
        )
        assert strip(timed.faults) == strip(base.faults)
        assert all(0.0 <= f.time < 2.0 for f in timed.faults)


def test_truncation_keeps_times_inside_horizon():
    """Even a process whose mass lies far past the horizon lands inside."""
    process = ExponentialProcess(mttf_s=1e6, mttr_s=1.0)
    for seed in range(8):
        inj = FaultInjector.random_schedule(seed, process=process, **SCHEDULE_KW)
        assert all(0.0 <= f.time < 2.0 for f in inj.faults)


def test_infant_mortality_front_loads_schedules():
    """Weibull shape < 1 concentrates fault times early relative to
    wear-out (shape > 1) under identical truncation — the reason the
    hook exists."""
    infant = WeibullProcess(shape=0.5, scale_s=4.0, mttr_s=1.0)
    wearout = WeibullProcess(shape=4.0, scale_s=4.0, mttr_s=1.0)

    def mean_time(process):
        times = [
            f.time
            for seed in range(64)
            for f in FaultInjector.random_schedule(
                seed, process=process, **SCHEDULE_KW
            ).faults
        ]
        return sum(times) / len(times)

    assert mean_time(infant) < mean_time(wearout)
