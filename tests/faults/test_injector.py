"""Unit tests for the fault-injection subsystem (`repro.faults`)."""

import pytest

from repro.faults import (
    COMPLETED,
    DEGRADED,
    ESCALATED,
    FAILED,
    FAULT_TYPES,
    REPAIR_STATUSES,
    BitRot,
    Crash,
    FaultInjector,
    LateReport,
    ReportLoss,
    Stall,
    Straggler,
    TornWrite,
    WireCorruption,
)
from repro.sim.events import EventQueue


class FakeSystem:
    """Duck-typed target recording every hook call."""

    def __init__(self):
        self.events = EventQueue()
        self.calls = []

    def fail_node(self, node):
        self.calls.append(("crash", node))

    def set_rate_cap(self, node, cap):
        self.calls.append(("cap", node, cap))

    def stall_node(self, node, duration_s):
        self.calls.append(("stall", node, duration_s))

    def suppress_reports(self, node, duration_s):
        self.calls.append(("loss", node, duration_s))

    def delay_reports(self, node, delay_s):
        self.calls.append(("late", node, delay_s))


class TestFaultEvents:
    def test_straggler_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Straggler(node=1, time=0.1, rate_cap_mbps=0.0)
        with pytest.raises(ValueError):
            Straggler(node=1, time=0.1, rate_cap_mbps=-5.0)

    def test_stall_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            Stall(node=1, time=0.1, duration_s=0.0)

    def test_faults_are_frozen(self):
        c = Crash(node=2, time=0.5)
        with pytest.raises(AttributeError):
            c.node = 3

    def test_fault_types_registry_covers_all(self):
        assert set(FAULT_TYPES) == {
            Crash, Straggler, Stall, ReportLoss, LateReport,
            BitRot, TornWrite, WireCorruption,
        }

    def test_status_constants(self):
        assert REPAIR_STATUSES == (COMPLETED, DEGRADED, ESCALATED, FAILED)
        assert COMPLETED == "completed" and FAILED == "failed"


class TestSchedule:
    def test_add_chains_and_counts(self):
        inj = FaultInjector().add(Crash(node=1, time=0.2)).add(
            Stall(node=2, time=0.1, duration_s=0.05)
        )
        assert len(inj) == 2

    def test_faults_sorted_by_time_then_node(self):
        inj = FaultInjector(
            [
                Crash(node=5, time=0.3),
                Crash(node=1, time=0.1),
                Crash(node=0, time=0.3),
            ]
        )
        assert [(f.time, f.node) for f in inj.faults] == [
            (0.1, 1),
            (0.3, 0),
            (0.3, 5),
        ]

    def test_random_schedule_is_deterministic(self):
        kw = dict(nodes=range(12), horizon_s=2.0, max_faults=4)
        a = FaultInjector.random_schedule(1234, **kw)
        b = FaultInjector.random_schedule(1234, **kw)
        assert a.faults == b.faults
        assert 1 <= len(a) <= 4

    def test_different_seeds_differ(self):
        kw = dict(nodes=range(12), horizon_s=2.0, max_faults=4)
        schedules = {
            FaultInjector.random_schedule(s, **kw).faults for s in range(20)
        }
        assert len(schedules) > 1

    def test_protected_nodes_never_targeted(self):
        for seed in range(50):
            inj = FaultInjector.random_schedule(
                seed, nodes=range(8), horizon_s=1.0, max_faults=5,
                protected=(0, 7),
            )
            assert all(f.node not in (0, 7) for f in inj.faults)

    def test_each_node_targeted_at_most_once(self):
        for seed in range(30):
            inj = FaultInjector.random_schedule(
                seed, nodes=range(6), horizon_s=1.0, max_faults=6
            )
            nodes = [f.node for f in inj.faults]
            assert len(nodes) == len(set(nodes))

    def test_max_crashes_cap_respected(self):
        for seed in range(80):
            inj = FaultInjector.random_schedule(
                seed, nodes=range(10), horizon_s=1.0, max_faults=6,
                max_crashes=1,
            )
            crashes = [f for f in inj.faults if isinstance(f, Crash)]
            assert len(crashes) <= 1

    def test_times_within_horizon(self):
        for seed in range(30):
            inj = FaultInjector.random_schedule(
                seed, nodes=range(10), horizon_s=0.5, max_faults=4
            )
            assert all(0.0 <= f.time <= 0.5 for f in inj.faults)


class TestArming:
    def test_arm_fires_every_fault_in_time_order(self):
        sys = FakeSystem()
        inj = FaultInjector(
            [
                Straggler(node=3, time=0.2, rate_cap_mbps=40.0),
                Crash(node=1, time=0.1),
                ReportLoss(node=2, time=0.3, duration_s=0.5),
                LateReport(node=4, time=0.4, delay_s=0.05),
                Stall(node=5, time=0.5, duration_s=0.1),
            ]
        )
        inj.arm(sys)
        assert inj.log.armed == 5
        sys.events.run()
        assert [c[0] for c in sys.calls] == ["crash", "cap", "loss", "late", "stall"]
        assert sys.calls[0] == ("crash", 1)
        assert sys.calls[1] == ("cap", 3, 40.0)
        assert len(inj.log.fired) == 5

    def test_past_fault_times_fire_immediately(self):
        sys = FakeSystem()
        sys.events.schedule(1.0, lambda: None)
        sys.events.run()  # clock now at 1.0
        inj = FaultInjector([Crash(node=2, time=0.25)])
        inj.arm(sys)
        sys.events.run()
        assert sys.calls == [("crash", 2)]
        assert sys.events.now == 1.0
