"""Trace persistence and statistics."""

import numpy as np
import pytest

from repro.workloads import (
    Trace,
    load_trace,
    make_trace,
    save_trace,
    trace_stats,
)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        trace = make_trace("tpch", num_snapshots=80, seed=3)
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert loaded.workload == "tpch"
        assert loaded.capacity_mbps == trace.capacity_mbps
        assert np.array_equal(loaded.uplink, trace.uplink)
        assert np.array_equal(loaded.downlink, trace.downlink)

    def test_suffix_added(self, tmp_path):
        trace = make_trace("swim", num_snapshots=10, seed=1)
        path = save_trace(trace, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_foreign_archive_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            uplink=np.ones((2, 2)),
            downlink=np.ones((2, 2)),
            capacity_mbps=np.array([100.0]),
            workload=np.array(["x"]),
            format_version=np.array([99]),
        )
        with pytest.raises(ValueError, match="newer"):
            load_trace(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "absent.npz")


class TestStats:
    def test_fields_consistent(self):
        trace = make_trace("swim", num_snapshots=300, seed=5)
        stats = trace_stats(trace)
        assert stats.workload == "swim"
        assert stats.num_snapshots == 300
        assert stats.num_nodes == 16
        assert 0 < stats.p05_available_mbps <= stats.mean_available_mbps
        assert stats.mean_available_mbps <= stats.p95_available_mbps
        assert 0 <= stats.congested_fraction <= 1
        assert stats.cv_mean <= stats.cv_p95

    def test_threshold_changes_congestion(self):
        trace = make_trace("tpcds", num_snapshots=300, seed=6)
        strict = trace_stats(trace, congestion_threshold=0.1)
        loose = trace_stats(trace, congestion_threshold=0.8)
        assert strict.congested_fraction <= loose.congested_fraction

    def test_uniform_trace_stats(self):
        trace = Trace(
            workload="flat",
            capacity_mbps=100.0,
            uplink=np.full((10, 4), 50.0),
            downlink=np.full((10, 4), 50.0),
        )
        stats = trace_stats(trace)
        assert stats.cv_mean == 0.0
        assert stats.mean_available_mbps == 50.0
