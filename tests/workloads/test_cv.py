"""Coefficient-of-variation utilities and bucketing."""

import numpy as np
import pytest

from repro.workloads import (
    DEFAULT_BUCKETS,
    bucket_index,
    bucket_label,
    bucketize_trace,
    coefficient_of_variation,
    make_trace,
    trace_cv,
)


class TestCv:
    def test_uniform_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        values = np.array([1.0, 3.0])
        assert coefficient_of_variation(values) == pytest.approx(1.0 / 2.0)

    def test_zero_mean(self):
        assert coefficient_of_variation([0.0, 0.0]) == 0.0

    def test_scale_invariant(self):
        v = np.array([1.0, 4.0, 7.0])
        assert coefficient_of_variation(v) == pytest.approx(
            coefficient_of_variation(v * 100)
        )

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([])
        with pytest.raises(ValueError):
            coefficient_of_variation(np.ones((2, 2)))


class TestBuckets:
    def test_default_edges(self):
        assert DEFAULT_BUCKETS == (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

    def test_bucket_index(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(0.05) == 0
        assert bucket_index(0.1) == 1
        assert bucket_index(0.45) == 4
        assert bucket_index(0.5) is None
        assert bucket_index(0.99) is None

    def test_bucket_label(self):
        assert bucket_label(0) == "0.0<=Cv<0.1"
        assert bucket_label(4) == "0.4<=Cv<0.5"

    def test_trace_cv_matches_manual(self):
        tr = make_trace("tpcds", num_snapshots=20, seed=1)
        cv = trace_cv(tr)
        mean_bw = (tr.uplink[7] + tr.downlink[7]) / 2
        assert cv[7] == pytest.approx(coefficient_of_variation(mean_bw))

    def test_bucketize_partition(self):
        tr = make_trace("swim", num_snapshots=500, seed=2)
        buckets = bucketize_trace(tr)
        cv = trace_cv(tr)
        covered = np.concatenate([v for v in buckets.values()])
        assert len(set(covered)) == len(covered)  # disjoint
        # everything below 0.5 is covered
        assert len(covered) == int((cv < 0.5).sum())
