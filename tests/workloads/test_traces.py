"""Synthetic workload traces: determinism, ranges, workload character."""

import numpy as np
import pytest

from repro.workloads import (
    SWIMTrace,
    TPCDSTrace,
    TPCHTrace,
    WORKLOADS,
    make_trace,
    trace_cv,
)


class TestGeneratorBasics:
    def test_registry_names(self):
        assert set(WORKLOADS) == {"tpcds", "tpch", "swim"}

    def test_make_trace_unknown_raises(self):
        with pytest.raises(KeyError):
            make_trace("ycsb")

    def test_shape(self):
        tr = make_trace("tpcds", num_nodes=12, num_snapshots=100, seed=1)
        assert tr.uplink.shape == (100, 12)
        assert tr.downlink.shape == (100, 12)
        assert len(tr) == 100
        assert tr.num_nodes == 12

    def test_determinism_same_seed(self):
        a = make_trace("swim", num_snapshots=50, seed=9)
        b = make_trace("swim", num_snapshots=50, seed=9)
        assert np.array_equal(a.uplink, b.uplink)
        assert np.array_equal(a.downlink, b.downlink)

    def test_different_seeds_differ(self):
        a = make_trace("swim", num_snapshots=50, seed=1)
        b = make_trace("swim", num_snapshots=50, seed=2)
        assert not np.array_equal(a.uplink, b.uplink)

    def test_workloads_differ_under_same_seed(self):
        a = make_trace("tpcds", num_snapshots=50, seed=1)
        b = make_trace("tpch", num_snapshots=50, seed=1)
        assert not np.array_equal(a.uplink, b.uplink)

    def test_bounds_respect_capacity(self):
        for name in WORKLOADS:
            tr = make_trace(name, num_snapshots=500, seed=3)
            assert (tr.uplink >= 0).all() and (tr.uplink <= 1000.0).all()
            assert (tr.downlink >= 0).all() and (tr.downlink <= 1000.0).all()

    def test_custom_capacity(self):
        tr = make_trace("tpcds", num_snapshots=50, seed=1, capacity_mbps=250.0)
        assert (tr.uplink <= 250.0).all()
        assert tr.capacity_mbps == 250.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TPCDSTrace(num_nodes=1)
        with pytest.raises(ValueError):
            TPCDSTrace(capacity_mbps=0)
        with pytest.raises(ValueError):
            TPCDSTrace().generate(0)


class TestTemporalStructure:
    def test_continuity(self):
        """Adjacent instants are correlated (the paper's 'continuous in
        time' requirement): step changes are small vs the global spread."""
        for name in WORKLOADS:
            tr = make_trace(name, num_snapshots=2000, seed=4)
            steps = np.abs(np.diff(tr.uplink, axis=0)).mean()
            spread = tr.uplink.std()
            assert steps < spread * 0.8, name

    def test_congested_instants_exist(self):
        for name in WORKLOADS:
            tr = make_trace(name, num_snapshots=2000, seed=5)
            assert len(tr.congested_instants()) > 50, name

    def test_congested_threshold_monotone(self):
        tr = make_trace("swim", num_snapshots=1000, seed=6)
        strict = tr.congested_instants(threshold_fraction=0.2)
        loose = tr.congested_instants(threshold_fraction=0.6)
        assert len(strict) <= len(loose)
        assert set(strict) <= set(loose)


class TestWorkloadCharacter:
    def test_cv_spans_paper_buckets(self):
        """Pooled across workloads, C_v must populate all five buckets."""
        from repro.workloads import bucketize_trace

        counts = {i: 0 for i in range(5)}
        for name in WORKLOADS:
            tr = make_trace(name, num_snapshots=6000, seed=7)
            for i, idx in bucketize_trace(tr).items():
                counts[i] += len(idx)
        assert all(counts[i] > 50 for i in range(5)), counts

    def test_swim_more_uneven_than_tpch(self):
        """SWIM's shuffle bursts produce a heavier C_v tail."""
        swim = trace_cv(make_trace("swim", num_snapshots=4000, seed=8))
        tpch = trace_cv(make_trace("tpch", num_snapshots=4000, seed=8))
        assert np.quantile(swim, 0.9) > np.quantile(tpch, 0.9)

    def test_swim_updown_asymmetry(self):
        """MapReduce up/down usage is weakly correlated vs TPC-DS."""
        swim = make_trace("swim", num_snapshots=4000, seed=9)
        tpcds = make_trace("tpcds", num_snapshots=4000, seed=9)

        def updown_corr(tr):
            u = tr.uplink.ravel() - tr.uplink.mean()
            d = tr.downlink.ravel() - tr.downlink.mean()
            return float((u * d).mean() / (u.std() * d.std()))

        assert updown_corr(swim) < updown_corr(tpcds)

    def test_snapshot_accessor(self):
        tr = make_trace("tpcds", num_snapshots=10, seed=10)
        snap = tr.snapshot(3)
        assert np.array_equal(snap.uplink, tr.uplink[3])
        assert snap.num_nodes == tr.num_nodes

    def test_snapshots_iterator(self):
        tr = make_trace("tpcds", num_snapshots=5, seed=10)
        assert len(list(tr.snapshots())) == 5
