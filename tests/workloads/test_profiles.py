"""Workload profile knobs: each parameter has its documented effect."""

import numpy as np
import pytest

from repro.workloads import TraceGenerator, WorkloadProfile, trace_cv


def profile(**overrides) -> WorkloadProfile:
    base = dict(
        base_load=0.3,
        ar_coeff=0.9,
        ar_sigma=0.05,
        burst_rate=0.03,
        burst_duration=8.0,
        burst_load=0.3,
        skew=0.15,
        skew_load=0.1,
        updown_corr=0.5,
    )
    base.update(overrides)
    return WorkloadProfile(**base)


def make_generator(p: WorkloadProfile, name="custom"):
    cls = type("CustomTrace", (TraceGenerator,), {"name": name, "profile": p})
    return cls(num_nodes=16, seed=3)


class TestProfileKnobs:
    def test_base_load_lowers_available(self):
        light = make_generator(profile(base_load=0.2)).generate(800)
        heavy = make_generator(profile(base_load=0.6)).generate(800)
        assert heavy.uplink.mean() < light.uplink.mean()

    def test_burst_rate_increases_congestion(self):
        calm = make_generator(profile(burst_rate=0.005)).generate(1500)
        bursty = make_generator(profile(burst_rate=0.15)).generate(1500)
        assert len(bursty.congested_instants()) > len(calm.congested_instants())

    def test_burst_load_raises_cv_tail(self):
        mild = make_generator(profile(burst_load=0.1)).generate(1500)
        severe = make_generator(profile(burst_load=0.6)).generate(1500)
        assert np.quantile(trace_cv(severe), 0.9) > np.quantile(
            trace_cv(mild), 0.9
        )

    def test_ar_coeff_smooths_time_series(self):
        choppy = make_generator(profile(ar_coeff=0.3)).generate(1500)
        smooth = make_generator(profile(ar_coeff=0.99)).generate(1500)

        def step_ratio(tr):
            return np.abs(np.diff(tr.uplink, axis=0)).mean() / tr.uplink.std()

        assert step_ratio(smooth) < step_ratio(choppy)

    def test_updown_corr_couples_directions(self):
        def corr(tr):
            u = tr.uplink.ravel() - tr.uplink.mean()
            d = tr.downlink.ravel() - tr.downlink.mean()
            return float((u * d).mean() / (u.std() * d.std()))

        weak = make_generator(profile(updown_corr=0.05)).generate(1200)
        strong = make_generator(profile(updown_corr=0.95)).generate(1200)
        assert corr(strong) > corr(weak)

    def test_skew_creates_hot_nodes(self):
        flat = make_generator(profile(skew=0.0, skew_load=0.0)).generate(1200)
        skewed = make_generator(profile(skew=0.5, skew_load=0.35)).generate(1200)
        # per-node long-run mean spread grows with static skew
        assert skewed.uplink.mean(axis=0).std() > flat.uplink.mean(axis=0).std()
