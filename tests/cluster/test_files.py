"""Striped-file layer."""

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.cluster.files import FileStore
from repro.cluster.placement import RandomSpreadPlacement
from repro.ec import RSCode
from repro.workloads import make_trace


@pytest.fixture
def cluster():
    sys_ = ClusterSystem(12, RSCode(6, 4), slice_bytes=2048)
    trace = make_trace("tpcds", num_nodes=12, num_snapshots=30, seed=6)
    sys_.set_bandwidth(trace.snapshot(10))
    return sys_


@pytest.fixture
def store(cluster):
    return FileStore(cluster, chunk_bytes=4096)


def payload(size, seed=0):
    return np.random.default_rng(seed).integers(0, 256, size, dtype=np.uint8).tobytes()


class TestWrite:
    def test_roundtrip_exact_multiple(self, store):
        data = payload(4 * 4096)  # exactly one stripe
        entry = store.write("a", data)
        assert entry.num_stripes == 1
        got, secs = store.read("a")
        assert got == data
        assert secs > 0

    def test_roundtrip_with_padding(self, store):
        data = payload(10_000, seed=1)  # not chunk-aligned
        entry = store.write("b", data)
        assert entry.size_bytes == 10_000
        got, _ = store.read("b")
        assert got == data

    def test_multi_stripe_file(self, store):
        data = payload(3 * 4 * 4096 + 777, seed=2)
        entry = store.write("c", data)
        assert entry.num_stripes == 4
        got, _ = store.read("c")
        assert got == data

    def test_duplicate_name_rejected(self, store):
        store.write("dup", payload(100))
        with pytest.raises(FileExistsError):
            store.write("dup", payload(100))

    def test_empty_file_rejected(self, store):
        with pytest.raises(ValueError):
            store.write("empty", b"")

    def test_catalog(self, store):
        store.write("x", payload(100))
        store.write("y", payload(100, seed=3))
        assert store.files() == ["x", "y"]
        assert len(store.stripes_of("x")) == 1
        with pytest.raises(FileNotFoundError):
            store.entry("zz")


class TestDegradedReads:
    def test_read_through_single_failure(self, store, cluster):
        data = payload(2 * 4 * 4096, seed=4)
        store.write("f", data)
        victim = cluster.master.stripe(store.stripes_of("f")[0]).placement[1]
        cluster.fail_node(victim)
        got, secs = store.read("f")
        assert got == data
        assert secs > 0

    def test_degraded_read_costs_more(self, store, cluster):
        data = payload(4 * 4096, seed=5)
        store.write("g", data)
        _, healthy = store.read("g")
        victim = cluster.master.stripe(store.stripes_of("g")[0]).placement[0]
        cluster.fail_node(victim)
        _, degraded = store.read("g")
        assert degraded > healthy

    def test_affected_files(self, store, cluster):
        store.write("h1", payload(4 * 4096, seed=6))
        store.write("h2", payload(4 * 4096, seed=7))
        sid = store.stripes_of("h1")[0]
        node = cluster.master.stripe(sid).placement[0]
        affected = store.affected_files(node)
        assert "h1" in affected


class TestPlacementIntegration:
    def test_custom_policy_used(self, cluster):
        policy = RandomSpreadPlacement(12, 6, seed=9)
        store = FileStore(cluster, chunk_bytes=4096, placement=policy)
        data = payload(2 * 4 * 4096, seed=8)
        store.write("p", data)
        sids = store.stripes_of("p")
        placements = {cluster.master.stripe(s).placement for s in sids}
        assert placements == {policy.place(0), policy.place(1)}

    def test_bad_chunk_size(self, cluster):
        with pytest.raises(ValueError):
            FileStore(cluster, chunk_bytes=0)
