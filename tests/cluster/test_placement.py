"""Stripe-placement policies."""

import numpy as np
import pytest

from repro.cluster.placement import (
    LoadBalancedPlacement,
    RandomSpreadPlacement,
    RoundRobinPlacement,
    make_policy,
)


class TestCommon:
    @pytest.mark.parametrize("name", ["round_robin", "random_spread", "load_balanced"])
    def test_distinct_nodes(self, name):
        policy = make_policy(name, num_nodes=12, n=9)
        for i in range(20):
            placement = policy.place(i)
            assert len(placement) == 9
            assert len(set(placement)) == 9
            assert all(0 <= node < 12 for node in placement)

    @pytest.mark.parametrize("name", ["round_robin", "random_spread", "load_balanced"])
    def test_exclusion_respected(self, name):
        policy = make_policy(name, num_nodes=12, n=9, exclude=(3, 7))
        for i in range(10):
            assert not {3, 7} & set(policy.place(i))

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            RoundRobinPlacement(num_nodes=8, n=9)
        with pytest.raises(ValueError):
            RoundRobinPlacement(num_nodes=10, n=9, exclude=(0, 1))

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_policy("best_fit", 12, 9)

    def test_place_many(self):
        policy = make_policy("round_robin", 12, 9)
        assert policy.place_many(5) == [policy.place(i) for i in range(5)]


class TestRoundRobin:
    def test_rotation(self):
        policy = RoundRobinPlacement(num_nodes=6, n=3)
        assert policy.place(0) == (0, 1, 2)
        assert policy.place(1) == (3, 4, 5)
        assert policy.place(2) == (0, 1, 2)

    def test_even_long_run_distribution(self):
        policy = RoundRobinPlacement(num_nodes=10, n=5)
        counts = np.zeros(10, dtype=int)
        for i in range(100):
            for node in policy.place(i):
                counts[node] += 1
        assert counts.max() - counts.min() <= 1


class TestRandomSpread:
    def test_seeded_determinism(self):
        a = RandomSpreadPlacement(12, 9, seed=5)
        b = RandomSpreadPlacement(12, 9, seed=5)
        assert a.place_many(10) == b.place_many(10)

    def test_seeds_differ(self):
        a = RandomSpreadPlacement(12, 9, seed=5)
        b = RandomSpreadPlacement(12, 9, seed=6)
        assert a.place_many(10) != b.place_many(10)

    def test_roughly_uniform(self):
        policy = RandomSpreadPlacement(16, 8, seed=0)
        counts = np.zeros(16, dtype=int)
        for i in range(400):
            for node in policy.place(i):
                counts[node] += 1
        # each node expects 200 chunks; allow generous sampling noise
        assert counts.min() > 150 and counts.max() < 250


class TestLoadBalanced:
    def test_minimises_spread(self):
        policy = LoadBalancedPlacement(num_nodes=11, n=4)
        for i in range(50):
            policy.place(i)
        counts = policy.chunk_counts()
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_counts_track_placements(self):
        policy = LoadBalancedPlacement(num_nodes=8, n=4)
        policy.place(0)
        assert sum(policy.chunk_counts().values()) == 4

    def test_beats_random_on_spread(self):
        lb = LoadBalancedPlacement(16, 9)
        rnd = RandomSpreadPlacement(16, 9, seed=1)
        lb_counts = np.zeros(16, dtype=int)
        rnd_counts = np.zeros(16, dtype=int)
        for i in range(60):
            for node in lb.place(i):
                lb_counts[node] += 1
            for node in rnd.place(i):
                rnd_counts[node] += 1
        assert lb_counts.std() <= rnd_counts.std()
