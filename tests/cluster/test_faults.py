"""Fault-tolerant repair execution: the mid-repair failure matrix.

Crashes and stalls are injected at controlled points of a running
repair ({before first byte, mid-segment, last segment} for each of
{hub crash, non-hub helper crash, requester-side stall}) and every case
must end with a byte-exact decode.  Also covers the traffic advantage of
remainder re-planning over restart-from-scratch, multi-chunk
escalation, explicit failure verdicts, outcome reporting, and the
remainder-interval bookkeeping helpers.
"""

import numpy as np
import pytest

from repro.analysis import render_fault_report, summarize_outcomes
from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.faults import (
    COMPLETED,
    DEGRADED,
    ESCALATED,
    FAILED,
    Crash,
    FaultInjector,
    Stall,
)
from repro.repair.recovery import (
    intervals_length,
    merge_intervals,
    uncovered_intervals,
)
from repro.workloads import make_trace

REQUESTER = 12
FAILED_NODE = 3
CHUNK = 64 * 1024


@pytest.fixture(scope="module")
def snapshot():
    return make_trace("tpcds", num_nodes=14, num_snapshots=60, seed=4).snapshot(30)


def build(algorithm="fullrepair", num_nodes=14, **kw):
    return ClusterSystem(num_nodes, RSCode(9, 6), algorithm=algorithm,
                         slice_bytes=4096, **kw)


def write(system, chunk=CHUNK, seed=2):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (6, chunk), dtype=np.uint8)
    system.write_stripe("s1", data, placement=tuple(range(9)))
    return data


def fresh_repair_system(snapshot, algorithm="fullrepair"):
    sys_ = build(algorithm)
    data = write(sys_)
    sys_.set_bandwidth(snapshot)
    sys_.fail_node(FAILED_NODE)
    return sys_, data


@pytest.fixture(scope="module")
def clean(snapshot):
    """A clean reference run: plan, elapsed time, total traffic."""
    sys_, data = fresh_repair_system(snapshot)
    out = sys_.repair("s1", FAILED_NODE, requester=REQUESTER, store=False)
    assert out.status == COMPLETED and out.verified
    hubs, leaves = set(), set()
    for p in out.plan.pipelines:
        parents = {e.parent for e in p.edges}
        for e in p.edges:
            if e.parent == REQUESTER and e.child in parents:
                hubs.add(e.child)
        for e in p.edges:
            if e.child not in parents:
                leaves.add(e.child)
    leaves -= hubs
    assert hubs and leaves, "expected a depth-2 multi-pipeline plan"
    return {
        "plan": out.plan,
        "elapsed": out.elapsed_seconds,
        "traffic": sys_.traffic_bytes,
        "hub": min(hubs),
        "leaf": min(leaves),
        "data": data,
    }


class TestFailureMatrix:
    """{hub crash, helper crash, requester stall} x {start, mid, end}."""

    WHEN = {"before-first-byte": 1e-6, "mid-segment": 0.5, "last-segment": 0.95}

    @pytest.mark.parametrize("role", ["hub", "leaf"])
    @pytest.mark.parametrize("when", list(WHEN))
    def test_crash_mid_repair_decodes_byte_exact(self, snapshot, clean, role, when):
        t = self.WHEN[when]
        at = t if t < 1e-3 else t * clean["elapsed"]
        sys_, data = fresh_repair_system(snapshot)
        inj = FaultInjector([Crash(node=clean[role], time=at)])
        out = sys_.repair(
            "s1", FAILED_NODE, requester=REQUESTER, injector=inj, store=False
        )
        assert out.verified
        assert np.array_equal(out.rebuilt, data[FAILED_NODE])
        assert out.status in (COMPLETED, DEGRADED)
        assert inj.log.fired or at > clean["elapsed"]

    @pytest.mark.parametrize("when", list(WHEN))
    def test_requester_stall_decodes_byte_exact(self, snapshot, clean, when):
        t = self.WHEN[when]
        at = t if t < 1e-3 else t * clean["elapsed"]
        sys_, data = fresh_repair_system(snapshot)
        inj = FaultInjector([Stall(node=REQUESTER, time=at, duration_s=0.04)])
        out = sys_.repair(
            "s1", FAILED_NODE, requester=REQUESTER, injector=inj, store=False
        )
        assert out.verified
        assert np.array_equal(out.rebuilt, data[FAILED_NODE])
        # a stall is transient: the repair must finish after it clears,
        # whether or not the watchdog chose to retry
        assert out.status in (COMPLETED, DEGRADED)

    def test_crash_recovery_replans_remainder(self, snapshot, clean):
        sys_, data = fresh_repair_system(snapshot)
        out = sys_.repair(
            "s1", FAILED_NODE, requester=REQUESTER, store=False,
            inject_failure=(clean["hub"], 0.5 * clean["elapsed"]),
        )
        assert out.verified and out.attempts >= 2
        assert out.retries >= 1 and out.replans >= 1
        final_participants = {
            e.child for p in out.plan.pipelines for e in p.edges
        }
        assert clean["hub"] not in final_participants


class TestTrafficAccounting:
    def test_remainder_replan_beats_restart_from_scratch(self, snapshot, clean):
        sys_, _ = fresh_repair_system(snapshot)
        out = sys_.repair(
            "s1", FAILED_NODE, requester=REQUESTER, store=False,
            inject_failure=(clean["hub"], 0.5 * clean["elapsed"]),
        )
        assert out.verified
        faulted = sys_.traffic_bytes
        # restart-from-scratch baseline: everything the aborted first
        # attempt moved, plus a full clean repair on top
        aborted = fresh_repair_system(snapshot)[0]
        failed = aborted.repair(
            "s1", FAILED_NODE, requester=REQUESTER, store=False,
            inject_failure=(clean["hub"], 0.5 * clean["elapsed"]),
            max_attempts=1, on_failure="outcome",
        )
        assert failed.status == FAILED
        restart = aborted.traffic_bytes + clean["traffic"]
        # remainder re-planning re-fetches only the unfinished suffix:
        assert clean["traffic"] < faulted < restart

    def test_clean_repair_traffic_matches_outcome(self, snapshot):
        sys_, _ = fresh_repair_system(snapshot)
        out = sys_.repair("s1", FAILED_NODE, requester=REQUESTER, store=False)
        assert out.retries == 0 and out.bytes_retransferred == 0
        assert sys_.traffic_bytes >= out.bytes_received > 0


class TestEscalation:
    def test_second_chunk_loss_escalates_to_multi(self, snapshot):
        # conventional repair uses exactly k of the 8 surviving placement
        # nodes, so some placement node is not a participant; losing it
        # mid-repair is invisible to the running plan and must escalate.
        sys_, data = fresh_repair_system(snapshot, algorithm="conventional")
        probe = sys_.master.schedule_repair(
            "s1", FAILED_NODE, requester=REQUESTER
        )
        participants = {e.child for p in probe.pipelines for e in p.edges}
        bystander = next(
            n for n in sys_.master.stripe("s1").placement
            if n != FAILED_NODE and n not in participants
        )
        out = sys_.repair(
            "s1", FAILED_NODE, requester=REQUESTER,
            inject_failure=(bystander, 1e-4),
        )
        assert out.status == ESCALATED
        assert out.verified
        assert out.replans >= 1

    def test_participant_crash_does_not_escalate(self, snapshot, clean):
        sys_, _ = fresh_repair_system(snapshot)
        out = sys_.repair(
            "s1", FAILED_NODE, requester=REQUESTER, store=False,
            inject_failure=(clean["hub"], 0.5 * clean["elapsed"]),
        )
        assert out.status in (COMPLETED, DEGRADED)


class TestFailureVerdict:
    def test_too_few_helpers_yields_explicit_failed_outcome(self, snapshot):
        sys_ = build(num_nodes=11)
        write(sys_)
        sys_.set_bandwidth(snapshot.restrict(range(11)))
        for node in (FAILED_NODE, 0, 1, 2):
            sys_.fail_node(node)
        out = sys_.repair(
            "s1", FAILED_NODE, requester=10, on_failure="outcome"
        )
        assert out.status == FAILED
        assert not out.verified
        assert out.rebuilt is None
        assert out.failure_reason

    def test_default_on_failure_raises(self, snapshot):
        sys_ = build(num_nodes=11)
        write(sys_)
        sys_.set_bandwidth(snapshot.restrict(range(11)))
        for node in (FAILED_NODE, 0, 1, 2):
            sys_.fail_node(node)
        with pytest.raises((RuntimeError, ValueError)):
            sys_.repair("s1", FAILED_NODE, requester=10)


class TestReporting:
    def _outcomes(self, snapshot, clean):
        outs = []
        sys_, _ = fresh_repair_system(snapshot)
        outs.append(sys_.repair("s1", FAILED_NODE, requester=REQUESTER, store=False))
        sys_, _ = fresh_repair_system(snapshot)
        outs.append(sys_.repair(
            "s1", FAILED_NODE, requester=REQUESTER, store=False,
            inject_failure=(clean["hub"], 0.5 * clean["elapsed"]),
        ))
        return outs

    def test_summarize_outcomes(self, snapshot, clean):
        outs = self._outcomes(snapshot, clean)
        summary = summarize_outcomes(outs)
        assert summary["total"] == 2
        assert summary["verified"] == 2
        assert sum(summary["by_status"].values()) == 2
        assert summary["retries"] >= 1
        assert summary["bytes_retransferred"] >= 0
        assert summary["bytes_received"] >= 2 * CHUNK

    def test_render_fault_report(self, snapshot, clean):
        outs = self._outcomes(snapshot, clean)
        text = render_fault_report(outs, title="matrix")
        assert "matrix" in text
        for out in outs:
            assert out.status in text


class TestRemainderIntervals:
    def test_merge_coalesces_and_sorts(self):
        assert merge_intervals([(10, 20), (0, 5), (15, 30), (5, 7)]) == [
            (0, 7),
            (10, 30),
        ]

    def test_merge_drops_empty(self):
        assert merge_intervals([(5, 5), (7, 3)]) == []

    def test_uncovered_complement(self):
        assert uncovered_intervals(100, [(0, 10), (50, 60)]) == [
            (10, 50),
            (60, 100),
        ]
        assert uncovered_intervals(100, []) == [(0, 100)]
        assert uncovered_intervals(100, [(0, 100)]) == []

    def test_lengths_partition_the_chunk(self):
        covered = [(0, 10), (40, 64), (10, 12)]
        rem = uncovered_intervals(64, covered)
        assert intervals_length(merge_intervals(covered)) + intervals_length(rem) == 64
