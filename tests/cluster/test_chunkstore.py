"""Per-node chunk storage."""

import numpy as np
import pytest

from repro.cluster import ChunkStore


@pytest.fixture
def store():
    s = ChunkStore()
    s.put("s1", 0, np.arange(32, dtype=np.uint8))
    s.put("s1", 3, np.full(16, 7, dtype=np.uint8))
    s.put("s2", 0, np.zeros(8, dtype=np.uint8))
    return s


class TestChunkStore:
    def test_roundtrip(self, store):
        assert np.array_equal(store.get("s1", 0), np.arange(32, dtype=np.uint8))

    def test_put_copies(self, store):
        payload = np.zeros(4, dtype=np.uint8)
        store.put("s3", 1, payload)
        payload[0] = 99
        assert store.get("s3", 1)[0] == 0

    def test_get_copies(self, store):
        a = store.get("s1", 0)
        a[0] = 99
        assert store.get("s1", 0)[0] == 0

    def test_get_range(self, store):
        assert np.array_equal(
            store.get_range("s1", 0, 4, 8), np.array([4, 5, 6, 7], dtype=np.uint8)
        )

    def test_get_range_bounds_checked(self, store):
        with pytest.raises(ValueError):
            store.get_range("s1", 0, 0, 100)
        with pytest.raises(ValueError):
            store.get_range("s1", 0, -1, 4)

    def test_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.get("s1", 1)

    def test_has(self, store):
        assert store.has("s1", 3)
        assert not store.has("s1", 4)

    def test_delete(self, store):
        store.delete("s1", 3)
        assert not store.has("s1", 3)
        with pytest.raises(KeyError):
            store.delete("s1", 3)

    def test_stripe_chunks(self, store):
        assert store.stripe_chunks("s1") == [0, 3]
        assert store.stripe_chunks("nope") == []

    def test_len_and_bytes(self, store):
        assert len(store) == 3
        assert store.bytes_stored == 32 + 16 + 8

    def test_rejects_2d_payload(self, store):
        with pytest.raises(ValueError):
            store.put("s4", 0, np.zeros((2, 2), dtype=np.uint8))
