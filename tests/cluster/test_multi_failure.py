"""Multi-failure repair within a single stripe."""

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.workloads import make_trace


@pytest.fixture
def snapshot():
    return make_trace("tpcds", num_nodes=14, num_snapshots=60, seed=4).snapshot(30)


def build(n=9, k=6, algorithm="fullrepair"):
    sys_ = ClusterSystem(14, RSCode(n, k), algorithm=algorithm, slice_bytes=4096)
    rng = np.random.default_rng(2)
    data = rng.integers(0, 256, (k, 24 * 1024), dtype=np.uint8)
    sys_.write_stripe("s1", data, placement=tuple(range(n)))
    return sys_, data


class TestRepairMulti:
    @pytest.mark.parametrize("algorithm", ["fullrepair", "pivotrepair", "rp"])
    def test_double_failure_byte_exact(self, snapshot, algorithm):
        sys_, data = build(algorithm=algorithm)
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(1)
        sys_.fail_node(4)
        outs = sys_.repair_multi("s1", (1, 4), {1: 10, 4: 11})
        assert set(outs) == {1, 4}
        assert all(o.verified for o in outs.values())
        assert np.array_equal(outs[1].rebuilt, data[1])
        assert np.array_equal(outs[4].rebuilt, data[4])

    def test_max_tolerable_failures(self, snapshot):
        sys_, _ = build()  # (9,6): tolerates 3
        sys_.set_bandwidth(snapshot)
        for f in (0, 3, 8):
            sys_.fail_node(f)
        outs = sys_.repair_multi("s1", (0, 3, 8), {0: 10, 3: 11, 8: 12})
        assert all(o.verified for o in outs.values())

    def test_too_many_failures_rejected(self, snapshot):
        sys_, _ = build()
        sys_.set_bandwidth(snapshot)
        for f in (0, 1, 2, 3):
            sys_.fail_node(f)
        with pytest.raises(ValueError, match="tolerates at most"):
            sys_.repair_multi("s1", (0, 1, 2, 3), {0: 10, 1: 11, 2: 12, 3: 13})

    def test_requesters_must_be_distinct(self, snapshot):
        sys_, _ = build()
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(0)
        sys_.fail_node(1)
        with pytest.raises(ValueError, match="distinct"):
            sys_.repair_multi("s1", (0, 1), {0: 10, 1: 10})

    def test_alive_node_rejected(self, snapshot):
        sys_, _ = build()
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(0)
        with pytest.raises(ValueError, match="must have failed"):
            sys_.repair_multi("s1", (0, 1), {0: 10, 1: 11})

    def test_requester_in_stripe_rejected(self, snapshot):
        sys_, _ = build()
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(0)
        sys_.fail_node(1)
        with pytest.raises(ValueError, match="invalid requester"):
            sys_.repair_multi("s1", (0, 1), {0: 5, 1: 10})

    def test_repairs_run_concurrently(self, snapshot):
        """Both repairs complete in one queue run, overlapping in time —
        total elapsed is far below the sum of two sequential repairs."""
        sys_, _ = build()
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(1)
        sys_.fail_node(4)
        outs = sys_.repair_multi("s1", (1, 4), {1: 10, 4: 11})
        concurrent = max(o.elapsed_seconds for o in outs.values())
        seq_sys, _ = build()
        seq_sys.set_bandwidth(snapshot)
        seq_sys.fail_node(1)
        a = seq_sys.repair("s1", 1, 10).elapsed_seconds
        seq_sys.fail_node(4)
        b = seq_sys.repair("s1", 4, 11).elapsed_seconds
        assert concurrent < (a + b)

    def test_chunks_stored_at_requesters(self, snapshot):
        sys_, _ = build()
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(2)
        sys_.fail_node(6)
        sys_.repair_multi("s1", (2, 6), {2: 12, 6: 13})
        assert sys_.nodes[12].store.has("s1", 2)
        assert sys_.nodes[13].store.has("s1", 6)
