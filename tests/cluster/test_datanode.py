"""DataNode slice execution unit tests."""

import numpy as np
import pytest

from repro.cluster import DataNode, TransferTask
from repro.ec import gf256
from repro.sim import EventQueue


def make_node(node_id=1, slice_bytes=256, **kw):
    events = EventQueue()
    node = DataNode(node_id, events, slice_bytes=slice_bytes, **kw)
    delivered = []
    node.deliver = lambda dest, msg: delivered.append((dest, msg))
    return node, events, delivered


def leaf_task(chunk_index=0, coeff=3, start=0, stop=1024, dest=9, rate=100.0,
              num_slices=None):
    return TransferTask(
        stripe_id="s", pipeline_id=7, chunk_index=chunk_index, coeff=coeff,
        start=start, stop=stop, destination=dest, rate_mbps=rate,
        num_slices=num_slices,
    )


class TestLeafSending:
    def test_sends_scaled_slices_in_order(self):
        node, events, delivered = make_node()
        chunk = np.arange(1024, dtype=np.uint8)
        node.store.put("s", 0, chunk)
        node.assign(leaf_task())
        events.run()
        assert len(delivered) == 4  # 1024 / 256
        starts = [msg.start for _, msg in delivered]
        assert starts == [0, 256, 512, 768]
        for _, msg in delivered:
            expected = gf256.mul_chunk(3, chunk[msg.start:msg.stop])
            assert np.array_equal(msg.payload, expected)

    def test_window_count_override(self):
        node, events, delivered = make_node()
        node.store.put("s", 0, np.zeros(1000, dtype=np.uint8))
        node.assign(leaf_task(stop=1000, num_slices=3))
        events.run()
        assert len(delivered) == 3
        sizes = [msg.stop - msg.start for _, msg in delivered]
        assert sorted(sizes) == [333, 333, 334]
        assert sum(sizes) == 1000

    def test_fifo_serialisation_times(self):
        node, events, delivered = make_node(slice_overhead_s=0.0)
        node.store.put("s", 0, np.zeros(1024, dtype=np.uint8))
        node.assign(leaf_task(rate=8.0))  # 1 byte/us
        arrivals = []
        node.deliver = lambda dest, msg: arrivals.append(events.now)
        events.run()
        # 256 bytes at 1e6 B/s = 256 us per slice, strictly serialised
        assert arrivals == pytest.approx([256e-6 * i for i in (1, 2, 3, 4)])

    def test_empty_segment_ignored(self):
        node, events, delivered = make_node()
        node.assign(leaf_task(start=100, stop=100))
        events.run()
        assert delivered == []
        assert node.pending_tasks() == 0


class TestHubCombining:
    def _hub_setup(self):
        node, events, delivered = make_node(node_id=2)
        chunk = np.full(512, 7, dtype=np.uint8)
        node.store.put("s", 1, chunk)
        task = TransferTask(
            stripe_id="s", pipeline_id=7, chunk_index=1, coeff=5,
            start=0, stop=512, destination=9, rate_mbps=100.0,
            wait_for=(4,), num_slices=2,
        )
        node.assign(task)
        return node, events, delivered, chunk

    def test_waits_for_upstream(self):
        node, events, delivered, _ = self._hub_setup()
        events.run()
        assert delivered == []  # nothing sendable before slices arrive

    def test_combines_and_forwards(self):
        from repro.cluster import SliceData

        node, events, delivered, chunk = self._hub_setup()
        incoming = np.arange(256, dtype=np.uint8)
        node.receive(SliceData("s", 7, source=4, start=0, stop=256,
                               payload=incoming))
        events.run()
        assert len(delivered) == 1
        dest, msg = delivered[0]
        assert dest == 9
        expected = np.bitwise_xor(gf256.mul_chunk(5, chunk[:256]), incoming)
        assert np.array_equal(msg.payload, expected)

    def test_duplicate_slice_rejected(self):
        from repro.cluster import SliceData

        node, events, delivered, _ = self._hub_setup()
        payload = np.zeros(256, dtype=np.uint8)
        node.receive(SliceData("s", 7, source=4, start=0, stop=256, payload=payload))
        with pytest.raises(RuntimeError, match="duplicate"):
            node.receive(SliceData("s", 7, source=4, start=0, stop=256, payload=payload))

    def test_misaligned_slice_rejected(self):
        from repro.cluster import SliceData

        node, events, delivered, _ = self._hub_setup()
        with pytest.raises(RuntimeError, match="misaligned"):
            node.receive(
                SliceData("s", 7, source=4, start=13, stop=256,
                          payload=np.zeros(243, dtype=np.uint8))
            )

    def test_wrong_size_payload_rejected(self):
        from repro.cluster import SliceData

        node, events, delivered, _ = self._hub_setup()
        with pytest.raises(RuntimeError, match="size"):
            node.receive(
                SliceData("s", 7, source=4, start=0, stop=256,
                          payload=np.zeros(17, dtype=np.uint8))
            )

    def test_unknown_task_rejected(self):
        from repro.cluster import SliceData

        node, events, delivered = make_node()
        with pytest.raises(RuntimeError, match="unknown task"):
            node.receive(
                SliceData("s", 99, source=4, start=0, stop=16,
                          payload=np.zeros(16, dtype=np.uint8))
            )
