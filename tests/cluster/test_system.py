"""End-to-end cluster repairs: byte exactness, timing, all algorithms."""

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.net import units
from repro.sim import TransferParams, execute
from repro.workloads import make_trace


def build_cluster(algorithm="fullrepair", n=9, k=6, num_nodes=12, **kw):
    return ClusterSystem(num_nodes, RSCode(n, k), algorithm=algorithm, **kw)


@pytest.fixture
def snapshot():
    return make_trace("tpcds", num_nodes=12, num_snapshots=40, seed=5).snapshot(17)


def write_and_fail(system, seed=1, chunk_bytes=32 * 1024):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (system.code.k, chunk_bytes), dtype=np.uint8)
    system.write_stripe("s1", data, placement=tuple(range(system.code.n)))
    system.fail_node(2)
    return data


class TestLifecycle:
    def test_write_places_chunks(self, snapshot):
        sys_ = build_cluster()
        data = write_and_fail(sys_)
        for idx in (0, 1, 3):
            chunk = sys_.read_chunk("s1", idx)
            if idx < sys_.code.k:
                assert np.array_equal(chunk, data[idx])

    def test_read_failed_chunk_raises(self, snapshot):
        sys_ = build_cluster()
        write_and_fail(sys_)
        with pytest.raises(RuntimeError):
            sys_.read_chunk("s1", 2)

    def test_cannot_place_on_failed_node(self, snapshot):
        sys_ = build_cluster()
        sys_.fail_node(0)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, (6, 64), dtype=np.uint8)
        with pytest.raises(ValueError):
            sys_.write_stripe("s2", data, placement=tuple(range(9)))

    def test_too_small_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterSystem(9, RSCode(9, 6))

    def test_repair_requires_failed_node(self, snapshot):
        sys_ = build_cluster()
        write_and_fail(sys_)
        sys_.set_bandwidth(snapshot)
        with pytest.raises(ValueError):
            sys_.repair("s1", failed_node=3, requester=10)


@pytest.mark.parametrize(
    "algorithm", ["conventional", "rp", "ppt", "pivotrepair", "fullrepair"]
)
class TestRepairAllAlgorithms:
    def test_bytes_exact(self, snapshot, algorithm):
        kw = {}
        sys_ = build_cluster(algorithm=algorithm, slice_bytes=4096)
        write_and_fail(sys_, chunk_bytes=24 * 1024)
        sys_.set_bandwidth(snapshot)
        out = sys_.repair("s1", failed_node=2, requester=10)
        assert out.verified
        assert out.elapsed_seconds > 0
        # the rebuilt chunk is now stored at the requester
        assert np.array_equal(
            sys_.nodes[10].store.get("s1", 2), out.rebuilt
        )

    def test_repair_data_chunk_matches_original_data(self, snapshot, algorithm):
        sys_ = build_cluster(algorithm=algorithm, slice_bytes=4096)
        data = write_and_fail(sys_, chunk_bytes=16 * 1024)
        sys_.set_bandwidth(snapshot)
        out = sys_.repair("s1", failed_node=2, requester=11)
        assert np.array_equal(out.rebuilt, data[2])  # systematic chunk 2


class TestTimingAgreement:
    def test_cluster_time_matches_transfer_executor(self, snapshot):
        """The event-driven data plane and the vectorised recurrence are
        the same model: elapsed == dispatch latency + transfer makespan."""
        for algorithm in ("rp", "pivotrepair", "fullrepair"):
            sys_ = build_cluster(
                algorithm=algorithm,
                slice_bytes=2048,
                dispatch_latency_s=1e-4,
            )
            write_and_fail(sys_, chunk_bytes=20 * 1024)
            sys_.set_bandwidth(snapshot)
            out = sys_.repair("s1", failed_node=2, requester=10)
            params = TransferParams(
                chunk_bytes=20 * 1024,
                slice_bytes=2048,
                slice_overhead_s=200e-6,
                compute_s_per_byte=1.25e-10,
            )
            expected = execute(out.plan, params).transfer_seconds
            got = out.elapsed_seconds - 1e-4  # remove dispatch latency
            assert got == pytest.approx(expected, rel=0.05), algorithm

    def test_fullrepair_faster_than_rp(self, snapshot):
        times = {}
        for algorithm in ("rp", "fullrepair"):
            sys_ = build_cluster(algorithm=algorithm, slice_bytes=4096)
            write_and_fail(sys_, chunk_bytes=64 * 1024)
            sys_.set_bandwidth(snapshot)
            times[algorithm] = sys_.repair(
                "s1", failed_node=2, requester=10
            ).elapsed_seconds
        assert times["fullrepair"] < times["rp"]


class TestRepairTraffic:
    def test_conventional_moves_k_chunks(self, snapshot):
        sys_ = build_cluster(algorithm="conventional", slice_bytes=4096)
        write_and_fail(sys_, chunk_bytes=12 * 1024)
        sys_.set_bandwidth(snapshot)
        out = sys_.repair("s1", failed_node=2, requester=10)
        # the requester downloads k whole chunks (the repair penalty)
        assert out.bytes_received == sys_.code.k * 12 * 1024

    def test_pipelined_delivers_one_chunk(self, snapshot):
        sys_ = build_cluster(algorithm="rp", slice_bytes=4096)
        write_and_fail(sys_, chunk_bytes=12 * 1024)
        sys_.set_bandwidth(snapshot)
        out = sys_.repair("s1", failed_node=2, requester=10)
        assert out.bytes_received == 12 * 1024

    def test_multiple_sequential_repairs(self, snapshot):
        sys_ = build_cluster(algorithm="fullrepair", slice_bytes=4096)
        rng = np.random.default_rng(3)
        for sid in ("a", "b"):
            data = rng.integers(0, 256, (6, 8192), dtype=np.uint8)
            sys_.write_stripe(sid, data, placement=tuple(range(9)))
        sys_.fail_node(4)
        sys_.set_bandwidth(snapshot)
        out_a = sys_.repair("a", failed_node=4, requester=9)
        out_b = sys_.repair("b", failed_node=4, requester=10)
        assert out_a.verified and out_b.verified
