"""Substrate the recovery orchestrator stands on: structured node-repair
failures, the node->stripes index, and the async repair primitives."""

import numpy as np
import pytest

from repro.cluster import ClusterSystem, FileStore
from repro.ec import RSCode
from repro.faults import FAILED
from repro.net import BandwidthSnapshot


def make_system(num_nodes=8, n=4, k=2, chunk=4096, mbps=500.0, seed=0):
    sys_ = ClusterSystem(num_nodes, RSCode(n, k), slice_bytes=2048)
    sys_.set_bandwidth(BandwidthSnapshot.uniform(num_nodes, mbps))
    rng = np.random.default_rng(seed)
    payloads = {}

    def write(sid, placement):
        data = rng.integers(0, 256, (k, chunk), dtype=np.uint8)
        sys_.write_stripe(sid, data, placement=placement)
        payloads[sid] = data

    return sys_, write, payloads


class TestRepairNodeStructuredFailure:
    def test_helper_death_mid_batch_yields_per_stripe_failed_outcome(self):
        # k=3 needs all three surviving chunks of "bad"; killing helper 4
        # mid-transfer starves that assembly while "good" (whose helpers
        # are 1,2,3) streams on — the batch must degrade per stripe, not
        # abort with a bare RuntimeError
        sys_, write, payloads = make_system(
            n=4, k=3, chunk=64 * 1024, mbps=100.0
        )
        write("good", (0, 1, 2, 3))
        write("bad", (0, 4, 5, 6))
        sys_.fail_node(0)
        sys_.events.schedule(0.0002, lambda: sys_.fail_node(4))
        outcomes = sys_.repair_node(0, {"good": 7, "bad": 7})
        assert set(outcomes) == {"good", "bad"}
        bad = outcomes["bad"]
        assert bad.status == FAILED
        assert not bad.verified
        assert bad.rebuilt is None
        assert bad.failure_reason.startswith("batched repair incomplete: ")
        assert f"of {64 * 1024} bytes arrived" in bad.failure_reason
        good = outcomes["good"]
        assert good.verified
        assert np.array_equal(good.rebuilt, payloads["good"][0])


class TestNodeStripesIndex:
    def make_populated(self, num_stripes=40):
        sys_, write, _ = make_system(num_nodes=10)
        rng = np.random.default_rng(42)
        for s in range(num_stripes):
            placement = tuple(
                int(x) for x in rng.choice(10, size=4, replace=False)
            )
            write(f"s{s:02d}", placement)
        return sys_

    def brute_force(self, sys_, node):
        return sorted(
            sid
            for sid in sys_.master.stripe_ids()
            if node in sys_.master.stripe(sid).placement
        )

    def test_index_matches_placement_scan(self):
        sys_ = self.make_populated()
        for node in range(sys_.num_nodes):
            assert sys_.stripes_on(node) == self.brute_force(sys_, node)

    def test_index_follows_relocation(self):
        sys_ = self.make_populated(num_stripes=12)
        moved = 0
        for sid in sys_.master.stripe_ids():
            loc = sys_.master.stripe(sid)
            spare = next(
                n for n in range(sys_.num_nodes) if n not in loc.placement
            )
            sys_.master.relocate_chunk(sid, 0, spare)
            moved += 1
        assert moved == 12
        for node in range(sys_.num_nodes):
            assert sys_.stripes_on(node) == self.brute_force(sys_, node)

    def test_index_survives_reregistration(self):
        sys_, write, _ = make_system()
        write("s0", (0, 1, 2, 3))
        write("s0", (4, 5, 6, 7))  # re-register elsewhere
        assert sys_.stripes_on(0) == []
        assert sys_.stripes_on(4) == ["s0"]

    def test_affected_files_uses_both_index_hops(self):
        sys_, _, _ = make_system(num_nodes=10)
        store = FileStore(sys_, chunk_bytes=2048)
        rng = np.random.default_rng(7)
        for name in ("alpha", "beta", "gamma"):
            store.write(name, rng.integers(0, 256, 3 * 4096, dtype=np.uint8))
        for node in range(sys_.num_nodes):
            expected = sorted(
                {
                    name
                    for name in store.files()
                    for sid in store.stripes_of(name)
                    if node in sys_.master.stripe(sid).placement
                }
            )
            assert store.affected_files(node) == expected


class TestAsyncPrimitives:
    def test_concurrent_repairs_of_same_chunk_get_unique_ids(self):
        sys_, write, payloads = make_system()
        write("s0", (0, 4, 5, 6))
        sys_.fail_node(0)
        done = []
        ids = [
            sys_.repair_async(
                "s0", 0, requester=r, store=False, on_done=done.append
            )
            for r in (1, 2, 3)
        ]
        assert len(set(ids)) == 3
        sys_.events.run()
        assert len(done) == 3
        assert all(o.verified for o in done)
        for o in done:
            assert np.array_equal(o.rebuilt, payloads["s0"][0])

    def test_slow_degraded_read_survives_concurrent_relocation(self):
        # a store=True repair relocates the chunk off node 0 while a
        # slower store=False degraded read of the same chunk is still in
        # flight; the read must settle against its dispatch-time
        # placement, not crash on the relocated one
        sys_, write, payloads = make_system()
        write("s0", (0, 4, 5, 6))
        sys_.fail_node(0)
        done = []
        sys_.repair_async(
            "s0", 0, requester=2, store=False,
            bandwidth_scale=0.05, on_done=done.append,
        )
        sys_.repair_async(
            "s0", 0, requester=1, store=True,
            bandwidth_scale=1.0, on_done=done.append,
        )
        sys_.events.run()
        assert len(done) == 2
        assert sys_.master.stripe("s0").placement[0] == 1  # relocated
        for outcome in done:
            assert outcome.verified
            assert np.array_equal(outcome.rebuilt, payloads["s0"][0])

    def test_multi_repair_deadline_returns_failed_outcomes(self):
        # the transfer needs ~ms at 1 Mbps; a 50 us deadline must expire
        # first and surface FAILED outcomes instead of hanging
        sys_, write, _ = make_system(chunk=64 * 1024, mbps=1.0)
        write("s0", (0, 1, 5, 6))
        sys_.fail_node(0)
        sys_.fail_node(1)
        results = []
        sys_.repair_multi_async(
            "s0", (0, 1), {0: 2, 1: 3},
            deadline_s=0.00005, on_done=results.append,
        )
        sys_.events.run()
        assert len(results) == 1
        outcomes = results[0]
        assert set(outcomes) == {0, 1}
        for outcome in outcomes.values():
            assert outcome.status == FAILED
            assert not outcome.verified
            assert "deadline" in outcome.failure_reason
