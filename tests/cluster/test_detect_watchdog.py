"""Detector-informed watchdog: early abort, clean-run silence, S6.

The cluster-side control wiring for ``repro.obs.detect``: a
``ClusterSystem(divergence=...)`` arms a throughput sampler alongside
every attempt's watchdog timer.  These tests pin down the contract —
a diverged attempt aborts *before* the timeout (``detect.abort``), a
clean repair is byte-identical with and without the monitor, and a
detector action declined because the timeout fallback already owns the
attempt epoch is recorded as a structured ``detect.suppressed`` event
with its reason.
"""

import pytest

from repro.obs import DivergenceMonitor, MetricsRegistry, Tracer
from repro.obs.demo import _build_system, _find_hub
from repro.workloads import make_trace

pytestmark = pytest.mark.detect

N, K, NUM_NODES = 14, 10, 16
FAILED, REQUESTER = 3, NUM_NODES - 1
CHUNK = 64 * 1024


def _snapshot():
    return make_trace(
        "tpcds", num_nodes=NUM_NODES, num_snapshots=60, seed=4
    ).snapshot(30)


def _system(monitor=None, tracer=None, metrics=None):
    system = _build_system(
        n=N, k=K, num_nodes=NUM_NODES, chunk_bytes=CHUNK,
        failed_node=FAILED, snapshot=_snapshot(), seed=2023,
        tracer=tracer, metrics=metrics,
    )
    system.divergence = monitor
    if monitor is not None:
        monitor.clock = lambda: system.events.now
    system.enable_heartbeats(period_s=0.005)
    return system


def _events(tracer, name):
    return [e for e in tracer.all_events() if e.name == name]


class TestEarlyAbort:
    @pytest.fixture(scope="class")
    def crash_runs(self):
        """The same hub crash, timeout-only vs detector-informed."""
        probe = _system()
        clean = probe.repair(
            "s1", FAILED, requester=REQUESTER, store=False
        )
        hub = _find_hub(clean.plan, REQUESTER)
        crash_at = 0.5 * clean.elapsed_seconds

        runs = {}
        for arm in ("baseline", "detector"):
            tracer, metrics = Tracer(), MetricsRegistry()
            monitor = (
                DivergenceMonitor.standard(tracer=tracer, metrics=metrics)
                if arm == "detector"
                else None
            )
            system = _system(monitor, tracer=tracer, metrics=metrics)
            system.events.schedule(
                crash_at, lambda s=system, h=hub: s.fail_node(h)
            )
            outcome = system.repair(
                "s1", FAILED, requester=REQUESTER, store=False,
                on_failure="outcome",
            )
            runs[arm] = (outcome, tracer, metrics, monitor)
        return crash_at, runs

    def test_detector_aborts_before_timeout_would(self, crash_runs):
        crash_at, runs = crash_runs
        base_out, base_tracer, _, _ = runs["baseline"]
        det_out, det_tracer, _, _ = runs["detector"]
        assert base_out.status == det_out.status == "completed"
        (abort,) = _events(det_tracer, "detect.abort")
        (fire,) = _events(base_tracer, "watchdog.fire")
        assert crash_at < abort.time < fire.time
        assert det_out.elapsed_seconds < base_out.elapsed_seconds

    def test_abort_event_names_the_divergence(self, crash_runs):
        _, runs = crash_runs
        _, tracer, _, _ = runs["detector"]
        (abort,) = _events(tracer, "detect.abort")
        assert abort.attrs["detector"] == "cusum"
        assert abort.attrs["ratio"] < 0.5
        assert abort.attrs["stat"] > 0
        assert abort.attrs["timeout_s"] > 0

    def test_early_abort_counted_and_alarm_recorded(self, crash_runs):
        _, runs = crash_runs
        outcome, _, metrics, monitor = runs["detector"]
        counter = metrics.counter("repro_detect_early_aborts_total", "")
        assert counter.value == 1
        assert monitor.alarm_count("repair.throughput_ratio") == 1
        assert outcome.retries >= 1  # the abort went through the retry path

    def test_wire_detector_discarded_after_repair(self, crash_runs):
        _, runs = crash_runs
        _, _, _, monitor = runs["detector"]
        assert monitor.keys("repair.throughput_ratio") == []


class TestCleanRun:
    def test_monitor_is_a_pure_observer(self):
        """No fault: identical repair with and without the monitor, no
        throughput alarms, no early aborts."""
        plain = _system().repair(
            "s1", FAILED, requester=REQUESTER, store=False
        )
        tracer = Tracer()
        monitor = DivergenceMonitor.standard(tracer=tracer)
        watched = _system(monitor, tracer=tracer).repair(
            "s1", FAILED, requester=REQUESTER, store=False
        )
        assert watched.elapsed_seconds == pytest.approx(
            plain.elapsed_seconds, rel=1e-9
        )
        assert monitor.alarm_count("repair.throughput_ratio") == 0
        assert _events(tracer, "detect.abort") == []
        assert monitor.observations("repair.throughput_ratio") > 0


class TestSuppression:
    def test_stale_epoch_tick_is_suppressed_with_reason(self):
        """S6: a detect tick landing after its attempt epoch was retired
        declines to act and records the structured reason."""
        tracer = Tracer()
        monitor = DivergenceMonitor.standard(tracer=tracer)
        system = _system(monitor, tracer=tracer)

        def stale_tick():
            (asm,) = system._assemblies.values()
            # the epoch string the sampler captured no longer matches:
            # exactly what a tick scheduled before a timeout-driven
            # re-plan observes when it finally runs
            system._detect_tick(asm, "w-stale")

        system.events.schedule(0.001, stale_tick)
        outcome = system.repair(
            "s1", FAILED, requester=REQUESTER, store=False
        )
        assert outcome.status == "completed"
        (record,) = monitor.suppressions
        assert record["signal"] == "repair.throughput_ratio"
        assert record["reason"] == "timeout fallback owns attempt epoch"
        assert record["key"] == "w-stale"
        (event,) = _events(tracer, "detect.suppressed")
        assert event.attrs["reason"] == record["reason"]
        # suppressed means *no* control action was taken
        assert _events(tracer, "detect.abort") == []
        assert outcome.retries == 0
