"""Cluster extensions: degraded reads, failure recovery, full-node repair."""

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.workloads import make_trace


@pytest.fixture
def snapshot():
    return make_trace("tpcds", num_nodes=14, num_snapshots=60, seed=4).snapshot(30)


def build(algorithm="fullrepair", num_nodes=14, **kw):
    return ClusterSystem(num_nodes, RSCode(9, 6), algorithm=algorithm,
                         slice_bytes=4096, **kw)


def write(system, stripe_id="s1", chunk=32 * 1024, seed=2, placement=None):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (6, chunk), dtype=np.uint8)
    system.write_stripe(stripe_id, data,
                        placement=placement or tuple(range(9)))
    return data


class TestDegradedRead:
    def test_healthy_chunk_direct(self, snapshot):
        sys_ = build()
        data = write(sys_)
        sys_.set_bandwidth(snapshot)
        payload, secs = sys_.degraded_read("s1", 0, reader=12)
        assert np.array_equal(payload, data[0])
        assert secs > 0

    def test_lost_chunk_repaired_on_read(self, snapshot):
        sys_ = build()
        data = write(sys_)
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(2)
        payload, secs = sys_.degraded_read("s1", 2, reader=12)
        assert np.array_equal(payload, data[2])
        assert secs > 0

    def test_degraded_read_does_not_persist(self, snapshot):
        sys_ = build()
        write(sys_)
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(2)
        sys_.degraded_read("s1", 2, reader=12)
        assert not sys_.nodes[12].store.has("s1", 2)

    def test_degraded_read_slower_than_direct(self, snapshot):
        sys_ = build()
        write(sys_)
        sys_.set_bandwidth(snapshot)
        _, direct = sys_.degraded_read("s1", 2, reader=12)
        sys_.fail_node(2)
        _, degraded = sys_.degraded_read("s1", 2, reader=12)
        assert degraded > direct


class TestFailureRecovery:
    def test_helper_death_triggers_reschedule(self, snapshot):
        sys_ = build()
        data = write(sys_, chunk=64 * 1024)
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(3)
        out = sys_.repair(
            "s1", failed_node=3, requester=12, inject_failure=(5, 0.002)
        )
        assert out.verified
        assert out.attempts >= 2
        assert np.array_equal(out.rebuilt, data[3])

    def test_second_plan_avoids_dead_helper(self, snapshot):
        sys_ = build()
        write(sys_, chunk=64 * 1024)
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(3)
        out = sys_.repair(
            "s1", failed_node=3, requester=12, inject_failure=(5, 0.002)
        )
        uploaders = {e.child for p in out.plan.pipelines for e in p.edges}
        assert 5 not in uploaders  # final plan excludes the dead helper

    def test_failure_after_completion_is_harmless(self, snapshot):
        sys_ = build()
        write(sys_)
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(3)
        out = sys_.repair(
            "s1", failed_node=3, requester=12, inject_failure=(5, 1e6)
        )
        assert out.verified
        assert out.attempts == 1

    def test_attempts_exhausted_raises(self, snapshot):
        sys_ = build(num_nodes=11)  # only 10 live nodes: n-2=7 surviving < ...
        write(sys_)
        sys_.set_bandwidth(snapshot.restrict(range(11)))
        sys_.fail_node(3)
        # kill helpers until fewer than k remain -> every attempt fails
        for h in (0, 1, 2):
            sys_.fail_node(h)
        with pytest.raises((RuntimeError, ValueError)):
            sys_.repair("s1", failed_node=3, requester=10)


class TestRepairNode:
    def _multi_stripe_cluster(self, snapshot, num_stripes=4):
        sys_ = build(num_nodes=14)
        rng = np.random.default_rng(8)
        originals = {}
        for i in range(num_stripes):
            sid = f"st{i}"
            data = rng.integers(0, 256, (6, 16 * 1024), dtype=np.uint8)
            nodes = tuple(int(x) for x in rng.permutation(13)[:9])
            sys_.write_stripe(sid, data, placement=nodes)
            originals[sid] = data
        sys_.set_bandwidth(snapshot)
        return sys_, originals

    def test_all_chunks_rebuilt_and_verified(self, snapshot):
        sys_, _ = self._multi_stripe_cluster(snapshot)
        victim = sys_.master.stripe("st0").placement[2]
        sys_.fail_node(victim)
        expected = set(sys_.stripes_on(victim))
        outcomes = sys_.repair_node(victim)
        assert set(outcomes) == expected
        assert all(o.verified for o in outcomes.values())
        # metadata moved on: the dead node no longer owns any chunk
        assert sys_.stripes_on(victim) == []

    def test_replacement_nodes_hold_chunks(self, snapshot):
        sys_, _ = self._multi_stripe_cluster(snapshot)
        victim = sys_.master.stripe("st0").placement[0]
        sys_.fail_node(victim)
        lost_of = {
            sid: sys_.master.stripe(sid).chunk_on(victim)
            for sid in sys_.stripes_on(victim)
        }
        outcomes = sys_.repair_node(victim)
        for sid, lost in lost_of.items():
            holders = [
                node for node in range(sys_.num_nodes)
                if sys_.nodes[node].store.has(sid, lost) and node != victim
            ]
            assert len(holders) == 1
            # metadata points at the replacement holder
            assert sys_.master.stripe(sid).node_of(lost) == holders[0]

    def test_explicit_requesters_honoured(self, snapshot):
        sys_, _ = self._multi_stripe_cluster(snapshot, num_stripes=2)
        victim = sys_.master.stripe("st0").placement[0]
        sys_.fail_node(victim)
        stripes = sys_.stripes_on(victim)
        target = next(
            r for r in range(sys_.num_nodes)
            if sys_.is_alive(r)
            and all(r not in sys_.master.stripe(s).placement for s in stripes)
        )
        lost_of = {s: sys_.master.stripe(s).chunk_on(victim) for s in stripes}
        outcomes = sys_.repair_node(victim, {s: target for s in stripes})
        for sid in outcomes:
            assert sys_.nodes[target].store.has(sid, lost_of[sid])

    def test_sequential_strategy(self, snapshot):
        sys_, _ = self._multi_stripe_cluster(snapshot)
        victim = sys_.master.stripe("st1").placement[1]
        sys_.fail_node(victim)
        outcomes = sys_.repair_node(victim, strategy="sequential")
        assert all(o.verified for o in outcomes.values())

    def test_healthy_node_rejected(self, snapshot):
        sys_, _ = self._multi_stripe_cluster(snapshot)
        with pytest.raises(ValueError):
            sys_.repair_node(0 if sys_.is_alive(0) else 1)

    def test_node_without_stripes(self, snapshot):
        sys_ = build(num_nodes=14)
        write(sys_)
        sys_.set_bandwidth(snapshot)
        sys_.fail_node(13)  # holds nothing
        assert sys_.repair_node(13) == {}
