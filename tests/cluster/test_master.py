"""Master: stripe metadata, bandwidth registry, context building."""

import numpy as np
import pytest

from repro.cluster import Master, StripeLocation
from repro.cluster.messages import BandwidthReport
from repro.core import FullRepair
from repro.ec import RSCode


@pytest.fixture
def master():
    m = Master(RSCode(5, 3), FullRepair(), num_nodes=8)
    m.register_stripe(StripeLocation("s1", (0, 1, 2, 3, 4)))
    for i in range(8):
        m.on_bandwidth_report(
            BandwidthReport(node=i, uplink_mbps=100.0 + i, downlink_mbps=200.0 + i)
        )
    return m


class TestStripeLocation:
    def test_lookup(self):
        loc = StripeLocation("s", (5, 3, 7))
        assert loc.node_of(1) == 3
        assert loc.chunk_on(7) == 2

    def test_chunk_on_missing(self):
        with pytest.raises(KeyError):
            StripeLocation("s", (5, 3, 7)).chunk_on(9)


class TestMaster:
    def test_register_validates_length(self, master):
        with pytest.raises(ValueError):
            master.register_stripe(StripeLocation("bad", (0, 1, 2)))

    def test_register_validates_distinct(self, master):
        with pytest.raises(ValueError):
            master.register_stripe(StripeLocation("bad", (0, 1, 2, 3, 3)))

    def test_bandwidth_snapshot(self, master):
        snap = master.snapshot()
        assert snap.uplink[3] == 103.0
        assert snap.downlink[5] == 205.0

    def test_build_context(self, master):
        ctx = master.build_context("s1", failed_node=2, requester=6)
        assert ctx.requester == 6
        assert set(ctx.helpers) == {0, 1, 3, 4}
        assert ctx.k == 3
        assert ctx.chunk_index[3] == 3

    def test_build_context_requires_failed_in_stripe(self, master):
        with pytest.raises(ValueError):
            master.build_context("s1", failed_node=7, requester=6)

    def test_build_context_requester_outside_stripe(self, master):
        with pytest.raises(ValueError):
            master.build_context("s1", failed_node=2, requester=0)

    def test_schedule_repair_returns_valid_plan(self, master):
        plan = master.schedule_repair("s1", failed_node=2, requester=6)
        plan.validate()
        assert plan.calc_seconds is not None

    def test_compile_tasks_cover_chunk(self, master):
        plan = master.schedule_repair("s1", failed_node=2, requester=6)
        tasks = master.compile_tasks(plan, "s1", lost_chunk=2, chunk_bytes=1 << 20)
        # per pipeline, k tasks (hub pipelines) or k (star) exist, and the
        # byte ranges of any one pipeline id are identical across tasks
        by_pipe = {}
        for t in tasks:
            by_pipe.setdefault(t.pipeline_id, []).append(t)
        for pid, group in by_pipe.items():
            assert len(group) == plan.context.k
            assert len({(t.start, t.stop) for t in group}) == 1
        # the union of pipeline ranges covers the chunk
        spans = sorted({(g[0].start, g[0].stop) for g in by_pipe.values()})
        assert spans[0][0] == 0
        assert spans[-1][1] == 1 << 20

    def test_compile_tasks_coefficients_repair(self, master):
        """The per-pipeline coefficients actually rebuild the lost chunk."""
        from repro.ec import gf256

        code = master.code
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, (3, 1024), dtype=np.uint8)
        stripe = code.encode(data)
        plan = master.schedule_repair("s1", failed_node=2, requester=6)
        tasks = master.compile_tasks(plan, "s1", lost_chunk=2, chunk_bytes=1024)
        rebuilt = np.zeros(1024, dtype=np.uint8)
        for t in tasks:
            contrib = gf256.mul_chunk(t.coeff, stripe[t.chunk_index][t.start:t.stop])
            rebuilt[t.start:t.stop] ^= contrib
        assert np.array_equal(rebuilt, stripe[2])


class TestRelocation:
    def test_relocate_updates_lookup(self, master):
        master.relocate_chunk("s1", 2, 7)
        assert master.stripe("s1").node_of(2) == 7
        assert master.stripe("s1").chunk_on(7) == 2
        assert "s1" in master.stripes_with_node(7)

    def test_relocate_rejects_conflicting_node(self, master):
        with pytest.raises(ValueError):
            master.relocate_chunk("s1", 2, 0)  # node 0 holds chunk 0

    def test_relocate_to_same_node_is_noop(self, master):
        master.relocate_chunk("s1", 2, 2)
        assert master.stripe("s1").node_of(2) == 2

    def test_repair_relocates_metadata(self, master):
        """After repair(store=True) reads route to the replacement."""
        import numpy as np

        from repro.cluster import ClusterSystem
        from repro.ec import RSCode
        from repro.workloads import make_trace

        sys_ = ClusterSystem(8, RSCode(5, 3), slice_bytes=2048)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, (3, 8192), dtype=np.uint8)
        sys_.write_stripe("x", data, placement=(0, 1, 2, 3, 4))
        sys_.set_bandwidth(
            make_trace("tpcds", num_nodes=8, num_snapshots=10, seed=1).snapshot(5)
        )
        sys_.fail_node(1)
        sys_.repair("x", failed_node=1, requester=6)
        assert sys_.master.stripe("x").node_of(1) == 6
        assert np.array_equal(sys_.read_chunk("x", 1), data[1])


class TestLiveness:
    def test_report_from_unregistered_node_rejected(self, master):
        from repro.cluster.master import UnknownNodeError

        with pytest.raises(UnknownNodeError, match="not registered"):
            master.on_bandwidth_report(
                BandwidthReport(node=42, uplink_mbps=10.0, downlink_mbps=10.0)
            )

    def test_report_from_dead_node_rejected(self, master):
        from repro.cluster.master import DeadNodeError

        master.mark_node_dead(3)
        with pytest.raises(DeadNodeError, match="dead node 3"):
            master.on_bandwidth_report(
                BandwidthReport(node=3, uplink_mbps=10.0, downlink_mbps=10.0)
            )

    def test_mark_node_live_rejoins(self, master):
        master.mark_node_dead(3)
        assert master.is_node_dead(3)
        assert master.dead_nodes() == (3,)
        master.mark_node_live(3)
        assert not master.is_node_dead(3)
        master.on_bandwidth_report(
            BandwidthReport(node=3, uplink_mbps=55.0, downlink_mbps=66.0)
        )
        assert master.snapshot().uplink[3] == 55.0

    def test_build_context_excludes_dead_helpers(self, master):
        master.mark_node_dead(1)
        ctx = master.build_context("s1", failed_node=0, requester=6)
        assert 1 not in ctx.helpers
        assert set(ctx.helpers) == {2, 3, 4}

    def test_build_context_dead_requester_rejected(self, master):
        from repro.cluster.master import DeadNodeError

        master.mark_node_dead(6)
        with pytest.raises(DeadNodeError, match="requester 6 is dead"):
            master.build_context("s1", failed_node=0, requester=6)

    def test_too_few_live_helpers_is_repair_impossible(self, master):
        from repro.cluster.master import RepairImpossibleError

        master.mark_node_dead(1)
        master.mark_node_dead(2)
        with pytest.raises(RepairImpossibleError, match="need k=3"):
            master.build_context("s1", failed_node=0, requester=6)


class TestLeases:
    def test_lease_config_validation(self, master):
        with pytest.raises(ValueError):
            master.configure_lease(0.0)
        with pytest.raises(ValueError):
            master.configure_lease(0.1, missed_reports=0)

    def test_leases_disabled_by_default(self, master):
        assert master.check_leases(now=1e9) == []

    def test_lease_expiry_declares_node_dead(self):
        m = Master(RSCode(5, 3), FullRepair(), num_nodes=8)
        m.configure_lease(0.1, missed_reports=3)
        for i in range(4):
            m.on_bandwidth_report(
                BandwidthReport(node=i, uplink_mbps=100.0, downlink_mbps=100.0),
                now=0.0,
            )
        m.on_bandwidth_report(
            BandwidthReport(node=0, uplink_mbps=100.0, downlink_mbps=100.0),
            now=0.5,
        )
        expired = m.check_leases(now=0.55)
        assert expired == [1, 2, 3]
        assert m.dead_nodes() == (1, 2, 3)
        assert not m.is_node_dead(0)

    def test_never_reported_nodes_are_not_leased(self):
        m = Master(RSCode(5, 3), FullRepair(), num_nodes=8)
        m.configure_lease(0.1, missed_reports=3)
        m.on_bandwidth_report(
            BandwidthReport(node=0, uplink_mbps=100.0, downlink_mbps=100.0),
            now=0.0,
        )
        assert m.check_leases(now=10.0) == [0]
        # nodes 1..7 never reported: not declared dead
        assert m.dead_nodes() == (0,)

    def test_lease_false_positive_heals_on_rejoin(self):
        m = Master(RSCode(5, 3), FullRepair(), num_nodes=8)
        m.configure_lease(0.1, missed_reports=3)
        m.on_bandwidth_report(
            BandwidthReport(node=2, uplink_mbps=100.0, downlink_mbps=100.0),
            now=0.0,
        )
        assert m.check_leases(now=1.0) == [2]
        m.mark_node_live(2)
        m.on_bandwidth_report(
            BandwidthReport(node=2, uplink_mbps=80.0, downlink_mbps=90.0),
            now=1.0,
        )
        assert not m.is_node_dead(2)
        assert m.check_leases(now=1.05) == []


class TestFallbackLadder:
    def test_promotion_reuses_previous_plan_shape(self):
        from repro.repair import get_algorithm

        m = Master(RSCode(5, 3), get_algorithm("rp"), num_nodes=8)
        m.register_stripe(StripeLocation("s1", (0, 1, 2, 3, 4)))
        for i in range(8):
            m.on_bandwidth_report(
                BandwidthReport(node=i, uplink_mbps=100.0, downlink_mbps=100.0)
            )
        prev = m.schedule_repair("s1", failed_node=0, requester=6)
        victim = prev.pipelines[0].participants[0]
        m.mark_node_dead(victim)
        dead = m.dead_nodes()
        promoted = m.schedule_repair(
            "s1", failed_node=0, requester=6, prev_plan=prev, newly_dead=dead
        )
        promoted.validate()
        assert promoted.meta.get("recovery") == "promoted"
        assert victim in promoted.meta["promoted"]
        for pipeline in promoted.pipelines:
            assert not set(pipeline.participants) & set(dead)
        # tree shape preserved: same number of pipelines and edges
        assert len(promoted.pipelines) == len(prev.pipelines)
        assert [len(p.edges) for p in promoted.pipelines] == [
            len(p.edges) for p in prev.pipelines
        ]

    def test_replan_without_prev_plan(self, master):
        master.mark_node_dead(1)
        plan = master.schedule_repair("s1", failed_node=0, requester=6)
        plan.validate()
        for pipeline in plan.pipelines:
            assert 1 not in pipeline.participants

    def test_every_rung_fails_raises_repair_impossible(self, master):
        from repro.cluster.master import RepairImpossibleError

        master.mark_node_dead(1)
        master.mark_node_dead(2)
        with pytest.raises(RepairImpossibleError):
            master.schedule_repair("s1", failed_node=0, requester=6)
