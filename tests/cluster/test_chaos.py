"""Chaos harness: seeded random fault schedules against a (14,10) code.

Every schedule must terminate (the event queue drains; the watchdog and
``max_attempts`` bound every retry loop) with either a byte-exact
recovered chunk or an explicit ``failed`` verdict carrying a reason —
never a hang, never silent corruption.

The tier-1 run replays a fixed default seed set; scale up with
``CHAOS_ITERATIONS=<n> pytest -m chaos``.  Any failure reproduces from
its seed alone (`FaultInjector.random_schedule` is deterministic).
"""

import os

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.faults import DEGRADED, FAILED, REPAIR_STATUSES, FaultInjector
from repro.obs import MetricsRegistry, Tracer

pytestmark = pytest.mark.chaos

NUM_NODES = 18
REQUESTER = 16
FAILED_NODE = 3
CHUNK = 16 * 1024
ITERATIONS = int(os.environ.get("CHAOS_ITERATIONS", "200"))


def make_system(seed, tracer=None, metrics=None):
    sys_ = ClusterSystem(NUM_NODES, RSCode(14, 10), algorithm="fullrepair",
                         slice_bytes=4096, tracer=tracer, metrics=metrics)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (10, CHUNK), dtype=np.uint8)
    sys_.write_stripe("s1", data, placement=tuple(range(14)))
    uplink = rng.uniform(200.0, 1000.0, NUM_NODES)
    downlink = rng.uniform(200.0, 1000.0, NUM_NODES)
    from repro.net import BandwidthSnapshot

    sys_.set_bandwidth(BandwidthSnapshot(uplink=uplink, downlink=downlink))
    return sys_, data


def run_one(seed, tracer=None, metrics=None):
    sys_, data = make_system(seed, tracer=tracer, metrics=metrics)
    sys_.fail_node(FAILED_NODE)
    injector = FaultInjector.random_schedule(
        seed,
        nodes=range(NUM_NODES),
        horizon_s=0.05,
        max_faults=3,
        max_crashes=2,
        protected=(REQUESTER,),
    )
    sys_.enable_heartbeats(period_s=0.01)
    out = sys_.repair(
        "s1", FAILED_NODE, requester=REQUESTER,
        injector=injector, on_failure="outcome", store=False,
    )
    return sys_, data, injector, out


@pytest.mark.parametrize("seed", range(ITERATIONS))
def test_random_schedule_terminates_correctly(seed):
    _, data, injector, out = run_one(seed)
    assert len(injector.log.fired) <= injector.log.armed
    assert out.status in REPAIR_STATUSES
    if out.status == FAILED:
        # explicit verdict: a reason, no phantom chunk
        assert out.failure_reason
        assert out.rebuilt is None and not out.verified
    else:
        # anything else must be byte-exact — no silent corruption
        assert out.verified
        assert np.array_equal(out.rebuilt, data[FAILED_NODE])
    assert out.attempts >= 1
    assert out.bytes_received >= 0


def test_same_seed_reproduces_identical_outcome():
    _, _, inj_a, out_a = run_one(11)
    _, _, inj_b, out_b = run_one(11)
    assert inj_a.faults == inj_b.faults
    assert (out_a.status, out_a.attempts, out_a.retries, out_a.replans) == (
        out_b.status, out_b.attempts, out_b.retries, out_b.replans
    )
    assert out_a.elapsed_seconds == out_b.elapsed_seconds
    assert out_a.bytes_received == out_b.bytes_received


@pytest.mark.parametrize("seed", range(ITERATIONS))
def test_traced_schedule_explains_every_outcome(seed):
    """Satellite of the observability PR: replay the schedule with a live
    tracer/registry and demand a per-seed metrics snapshot plus — for any
    failed or degraded outcome — a non-empty trace that explains it."""
    tracer, metrics = Tracer(), MetricsRegistry()
    _, _, injector, out = run_one(seed, tracer=tracer, metrics=metrics)

    # per-seed metrics snapshot: outcome, timing, and fault activity
    snap = metrics.snapshot()
    assert metrics.total("repro_repairs_total") == 1
    assert metrics.get("repro_repairs_total", status=out.status).value == 1
    assert snap["repro_repair_seconds"][()]["count"] == 1
    assert metrics.total("repro_faults_injected_total") == len(injector.log.fired)
    assert metrics.total("repro_replans_total") == out.replans
    assert metrics.total("repro_retries_total") == out.retries

    # the trace must carry the same story
    repairs = tracer.find(kind="repair")
    assert len(repairs) == 1
    root = repairs[0]
    assert root.attrs["status"] == out.status
    assert root.attrs["attempts"] == out.attempts
    if out.status in (FAILED, DEGRADED):
        assert out.failure_reason
        assert root.attrs["failure_reason"] == out.failure_reason
        # a non-empty event stream explains *why*: something observable
        # went wrong before the verdict
        names = set(tracer.event_names())
        assert names & {
            "fault.injected", "node.crash", "watchdog.fire",
            "attempt.abort", "planning.failed", "repair.escalate",
            "ladder.promotion", "ladder.star-fallback",
        }, f"no explanatory events for {out.status}: {out.failure_reason}"


def test_tracing_does_not_perturb_outcomes():
    """Spans and metrics are recorded off the simulated clock; enabling
    them must leave every scheduling decision byte-identical."""
    for seed in (0, 11, 23):
        _, _, _, plain = run_one(seed)
        _, _, _, traced = run_one(seed, tracer=Tracer(), metrics=MetricsRegistry())
        assert (
            plain.status, plain.attempts, plain.retries, plain.replans,
            plain.elapsed_seconds, plain.bytes_received,
        ) == (
            traced.status, traced.attempts, traced.retries, traced.replans,
            traced.elapsed_seconds, traced.bytes_received,
        )


def test_chaos_outcomes_are_mostly_recoverable():
    """Sanity on the harness itself: with at most 2 extra crashes against
    a code tolerating 4 losses, the vast majority of schedules recover."""
    statuses = [run_one(seed)[3].status for seed in range(40)]
    recovered = sum(s != FAILED for s in statuses)
    assert recovered >= 30


# ---- silent corruption in the fault mix -------------------------------- #


def run_one_corrupted(seed, tracer=None, metrics=None):
    """`run_one` with bit rot, torn writes and wire corruption enabled."""
    sys_, data = make_system(seed, tracer=tracer, metrics=metrics)
    sys_.fail_node(FAILED_NODE)
    injector = FaultInjector.random_schedule(
        seed,
        nodes=range(NUM_NODES),
        horizon_s=0.05,
        max_faults=4,
        max_crashes=2,
        protected=(REQUESTER,),
        corruption=True,
    )
    sys_.enable_heartbeats(period_s=0.01)
    out = sys_.repair(
        "s1", FAILED_NODE, requester=REQUESTER,
        injector=injector, on_failure="outcome", store=False,
    )
    return sys_, data, injector, out


@pytest.mark.integrity
@pytest.mark.parametrize("seed", range(ITERATIONS))
def test_corruption_schedule_never_silently_corrupts(seed):
    """The chaos invariant survives an adversary that flips bits: every
    schedule still ends byte-exact or explicitly failed, and whatever
    was quarantined along the way was both detected and recorded."""
    sys_, data, injector, out = run_one_corrupted(seed)
    assert out.status in REPAIR_STATUSES
    if out.status == FAILED:
        assert out.failure_reason
        assert out.rebuilt is None and not out.verified
    else:
        assert out.verified
        assert np.array_equal(out.rebuilt, data[FAILED_NODE])
    if out.quarantined_chunks:
        assert out.corruption_detected
        for ci in out.quarantined_chunks:
            assert sys_.master.is_quarantined("s1", ci)


@pytest.mark.integrity
def test_corruption_schedule_reproduces_identical_outcome():
    _, _, inj_a, out_a = run_one_corrupted(17)
    _, _, inj_b, out_b = run_one_corrupted(17)
    assert inj_a.faults == inj_b.faults
    assert (
        out_a.status, out_a.attempts, out_a.retries, out_a.replans,
        out_a.elapsed_seconds, out_a.bytes_received,
        out_a.corruption_detected, out_a.quarantined_chunks,
    ) == (
        out_b.status, out_b.attempts, out_b.retries, out_b.replans,
        out_b.elapsed_seconds, out_b.bytes_received,
        out_b.corruption_detected, out_b.quarantined_chunks,
    )


@pytest.mark.integrity
def test_corruption_chaos_exercises_detection():
    """The new fault kinds must actually fire *during* repairs and be
    caught — otherwise the seeds above are testing dead schedules.  A
    tight horizon packs the faults into the repair's lifetime."""
    detected = quarantined = 0
    for seed in range(60):
        sys_, data, = make_system(seed)
        sys_.fail_node(FAILED_NODE)
        injector = FaultInjector.random_schedule(
            seed, nodes=range(NUM_NODES), horizon_s=0.004, max_faults=4,
            max_crashes=1, protected=(REQUESTER,), corruption=True,
        )
        sys_.enable_heartbeats(period_s=0.01)
        out = sys_.repair(
            "s1", FAILED_NODE, requester=REQUESTER,
            injector=injector, on_failure="outcome", store=False,
        )
        if out.status != FAILED:
            assert out.verified
            assert np.array_equal(out.rebuilt, data[FAILED_NODE])
        detected += bool(out.corruption_detected)
        quarantined += bool(out.quarantined_chunks)
    assert detected >= 8
    assert quarantined >= 4


# ---- orchestrated recovery under chaos --------------------------------- #

ORCH_ITERATIONS = max(1, ITERATIONS // 8)


def run_orchestrated(seed):
    """Node deaths landing *during* orchestrator-driven node recovery.

    Three seeded crashes hit a (6,4) cluster while the background
    recovery orchestrator drains: the later deaths kill helpers,
    requesters, and queued stripes' second chunks mid-flight.
    """
    from repro.recovery import RecoveryConfig, RecoveryOrchestrator

    rng = np.random.default_rng(seed + 10_000)
    sys_ = ClusterSystem(12, RSCode(6, 4), slice_bytes=4096)
    from repro.net import BandwidthSnapshot

    sys_.set_bandwidth(
        BandwidthSnapshot(
            uplink=rng.uniform(200.0, 1000.0, 12),
            downlink=rng.uniform(200.0, 1000.0, 12),
        )
    )
    payloads = {}
    for s in range(8):
        data = rng.integers(0, 256, (4, CHUNK), dtype=np.uint8)
        sid = f"s{s}"
        sys_.write_stripe(
            sid, data,
            placement=tuple(int(x) for x in rng.choice(12, 6, replace=False)),
        )
        payloads[sid] = data
    orch = RecoveryOrchestrator(
        sys_,
        RecoveryConfig(
            budget_fraction=0.5, max_concurrent=2, tick_s=0.005,
            multi_deadline_s=0.05, max_item_attempts=3,
        ),
    )
    orch.start()
    victims = [int(v) for v in rng.choice(12, size=3, replace=False)]
    times = sorted(0.001 + rng.uniform(0.0, 0.04, 3))
    for victim, t in zip(victims, times):
        sys_.events.schedule_at(t, lambda v=victim: sys_.fail_node(v))
    sys_.events.run()
    return sys_, orch, payloads


@pytest.mark.recovery
@pytest.mark.parametrize("seed", range(ORCH_ITERATIONS))
def test_death_during_orchestrated_recovery_terminates(seed):
    sys_, orch, payloads = run_orchestrated(seed)
    # termination: the control loop wound down, never wedged
    assert not orch.active
    assert orch.inflight == 0 and orch.committed_fraction == 0.0
    # every terminal record is either byte-verified or carries a reason
    for record in orch.records:
        if record.status == FAILED:
            assert record.failure_reason
        else:
            assert record.verified
    assert all(reason for reason in orch.dead_letters.values())
    # any stripe the orchestrator did not give up on ends fully healthy,
    # its chunks byte-identical to the originals
    for sid, data in payloads.items():
        if sid in orch.dead_letters:
            continue
        loc = sys_.master.stripe(sid)
        assert all(sys_.is_alive(node) for node in loc.placement), sid
        for ci in range(data.shape[0]):
            assert np.array_equal(sys_.read_chunk(sid, ci), data[ci]), sid


@pytest.mark.recovery
def test_orchestrated_chaos_reproduces_per_seed():
    def fingerprint(seed):
        _, orch, _ = run_orchestrated(seed)
        return (
            [
                (r.stripe_id, r.priority_class, r.status, r.verified,
                 r.admitted_at, r.finished_at, r.share)
                for r in orch.records
            ],
            dict(orch.dead_letters),
            orch.drained_at,
        )

    assert fingerprint(17) == fingerprint(17)
