"""Chaos harness: seeded random fault schedules against a (14,10) code.

Every schedule must terminate (the event queue drains; the watchdog and
``max_attempts`` bound every retry loop) with either a byte-exact
recovered chunk or an explicit ``failed`` verdict carrying a reason —
never a hang, never silent corruption.

The tier-1 run replays a fixed default seed set; scale up with
``CHAOS_ITERATIONS=<n> pytest -m chaos``.  Any failure reproduces from
its seed alone (`FaultInjector.random_schedule` is deterministic).
"""

import os

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.faults import FAILED, REPAIR_STATUSES, FaultInjector

pytestmark = pytest.mark.chaos

NUM_NODES = 18
REQUESTER = 16
FAILED_NODE = 3
CHUNK = 16 * 1024
ITERATIONS = int(os.environ.get("CHAOS_ITERATIONS", "200"))


def make_system(seed):
    sys_ = ClusterSystem(NUM_NODES, RSCode(14, 10), algorithm="fullrepair",
                         slice_bytes=4096)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (10, CHUNK), dtype=np.uint8)
    sys_.write_stripe("s1", data, placement=tuple(range(14)))
    uplink = rng.uniform(200.0, 1000.0, NUM_NODES)
    downlink = rng.uniform(200.0, 1000.0, NUM_NODES)
    from repro.net import BandwidthSnapshot

    sys_.set_bandwidth(BandwidthSnapshot(uplink=uplink, downlink=downlink))
    return sys_, data


def run_one(seed):
    sys_, data = make_system(seed)
    sys_.fail_node(FAILED_NODE)
    injector = FaultInjector.random_schedule(
        seed,
        nodes=range(NUM_NODES),
        horizon_s=0.05,
        max_faults=3,
        max_crashes=2,
        protected=(REQUESTER,),
    )
    sys_.enable_heartbeats(period_s=0.01)
    out = sys_.repair(
        "s1", FAILED_NODE, requester=REQUESTER,
        injector=injector, on_failure="outcome", store=False,
    )
    return sys_, data, injector, out


@pytest.mark.parametrize("seed", range(ITERATIONS))
def test_random_schedule_terminates_correctly(seed):
    _, data, injector, out = run_one(seed)
    assert len(injector.log.fired) <= injector.log.armed
    assert out.status in REPAIR_STATUSES
    if out.status == FAILED:
        # explicit verdict: a reason, no phantom chunk
        assert out.failure_reason
        assert out.rebuilt is None and not out.verified
    else:
        # anything else must be byte-exact — no silent corruption
        assert out.verified
        assert np.array_equal(out.rebuilt, data[FAILED_NODE])
    assert out.attempts >= 1
    assert out.bytes_received >= 0


def test_same_seed_reproduces_identical_outcome():
    _, _, inj_a, out_a = run_one(11)
    _, _, inj_b, out_b = run_one(11)
    assert inj_a.faults == inj_b.faults
    assert (out_a.status, out_a.attempts, out_a.retries, out_a.replans) == (
        out_b.status, out_b.attempts, out_b.retries, out_b.replans
    )
    assert out_a.elapsed_seconds == out_b.elapsed_seconds
    assert out_a.bytes_received == out_b.bytes_received


def test_chaos_outcomes_are_mostly_recoverable():
    """Sanity on the harness itself: with at most 2 extra crashes against
    a code tolerating 4 losses, the vast majority of schedules recover."""
    statuses = [run_one(seed)[3].status for seed in range(40)]
    recovered = sum(s != FAILED for s in statuses)
    assert recovered >= 30
