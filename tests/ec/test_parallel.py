"""Parallel segment executor: partitioning, determinism, fallbacks.

Workers write disjoint output slices computed by exact GF arithmetic,
so the parallel backend must be byte-identical to the serial kernels for
every worker count and scheduling order — including under the
chaos-style random seeds the simulator's fault tests use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ec import backend as ec_backend
from repro.ec import gf256, matrix, parallel

pytestmark = pytest.mark.ec

#: Comfortably above MIN_PARALLEL_BYTES so the pool path actually runs.
BIG = parallel.MIN_PARALLEL_BYTES * 2 + 1


class TestSegmentBounds:
    def test_covers_range_disjointly(self):
        for length in (0, 1, 2, 3, 100, 101, 1 << 20):
            for workers in (1, 2, 3, 7, 64):
                bounds = parallel.segment_bounds(length, workers)
                if length == 0:
                    assert bounds == []
                    continue
                assert bounds[0][0] == 0
                assert bounds[-1][1] == length
                for (alo, ahi), (blo, bhi) in zip(bounds, bounds[1:]):
                    assert ahi == blo
                    assert alo < ahi

    def test_interior_boundaries_even(self):
        for length in (10, 1001, 65537):
            for workers in (2, 3, 5):
                bounds = parallel.segment_bounds(length, workers)
                for _, hi in bounds[:-1]:
                    assert hi % 2 == 0

    def test_never_more_segments_than_pairs(self):
        assert len(parallel.segment_bounds(3, 16)) <= 2


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 2023, 7_777_777])
    def test_matmul_identical_across_worker_counts(self, seed):
        rng = np.random.default_rng(seed)
        mat = rng.integers(0, 256, size=(5, 4), dtype=np.uint8)
        chunks = rng.integers(0, 256, size=(4, BIG), dtype=np.uint8)
        expected = matrix.matvec_chunks(mat, chunks)
        for workers in (1, 2, 3, 8):
            got = parallel.parallel_matmul(mat, chunks, workers=workers)
            assert np.array_equal(expected, got), f"workers={workers}"

    @pytest.mark.parametrize("seed", [1, 42])
    def test_dot_identical_across_worker_counts(self, seed):
        rng = np.random.default_rng(seed)
        coeffs = [int(c) for c in rng.integers(0, 256, size=5)]
        chunks = rng.integers(0, 256, size=(5, BIG), dtype=np.uint8)
        expected = gf256.dot(coeffs, chunks)
        for workers in (1, 3, 8):
            got = parallel.parallel_dot(coeffs, chunks, workers=workers)
            assert np.array_equal(expected, got)

    def test_repeated_runs_bit_identical(self):
        rng = np.random.default_rng(99)
        mat = rng.integers(0, 256, size=(3, 3), dtype=np.uint8)
        chunks = rng.integers(0, 256, size=(3, BIG), dtype=np.uint8)
        first = parallel.parallel_matmul(mat, chunks, workers=4)
        for _ in range(3):
            again = parallel.parallel_matmul(mat, chunks, workers=4)
            assert np.array_equal(first, again)


class TestFallbacks:
    def test_small_payload_stays_serial(self):
        rng = np.random.default_rng(5)
        mat = rng.integers(0, 256, size=(2, 3), dtype=np.uint8)
        chunks = rng.integers(
            0, 256, size=(3, parallel.MIN_PARALLEL_BYTES // 4), dtype=np.uint8
        )
        expected = matrix.matvec_chunks(mat, chunks)
        got = parallel.parallel_matmul(mat, chunks, workers=8)
        assert np.array_equal(expected, got)

    def test_out_buffer_is_filled(self):
        rng = np.random.default_rng(6)
        mat = rng.integers(0, 256, size=(2, 2), dtype=np.uint8)
        chunks = rng.integers(0, 256, size=(2, BIG), dtype=np.uint8)
        out = np.empty((2, BIG), dtype=np.uint8)
        got = parallel.parallel_matmul(mat, chunks, out, workers=4)
        assert got is out
        assert np.array_equal(out, matrix.matvec_chunks(mat, chunks))

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EC_WORKERS", "3")
        assert parallel.default_workers() == 3
        monkeypatch.setenv("REPRO_EC_WORKERS", "not-a-number")
        assert parallel.default_workers() >= 1
        monkeypatch.delenv("REPRO_EC_WORKERS")
        assert parallel.default_workers() >= 1

    def test_parallel_backend_configured_workers(self):
        be = ec_backend.ParallelBackend(workers=2)
        rng = np.random.default_rng(8)
        chunks = rng.integers(0, 256, size=(3, BIG), dtype=np.uint8)
        coeffs = [2, 3, 4]
        assert np.array_equal(be.dot(coeffs, chunks), gf256.dot(coeffs, chunks))


class TestProcessPath:
    def test_process_matmul_correct_or_unavailable(self):
        """Shared-memory path agrees byte-for-byte where the OS allows it."""
        rng = np.random.default_rng(9)
        mat = rng.integers(0, 256, size=(2, 3), dtype=np.uint8)
        length = 1 << 18
        chunks = rng.integers(0, 256, size=(3, length), dtype=np.uint8)
        out = np.empty((2, length), dtype=np.uint8)
        result = parallel.process_matmul(
            mat, [chunks[i] for i in range(3)], out, workers=2
        )
        if result is None:
            pytest.skip("shared memory unavailable in this environment")
        assert np.array_equal(result, matrix.matvec_chunks(mat, chunks))
