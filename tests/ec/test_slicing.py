"""Chunk slicing and segment arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import Segment, slicing


class TestSplitJoin:
    def test_roundtrip_exact_multiple(self):
        chunk = np.arange(64, dtype=np.uint8)
        slices = slicing.split_chunk(chunk, 16)
        assert len(slices) == 4
        assert np.array_equal(slicing.join_slices(slices), chunk)

    def test_roundtrip_with_remainder(self):
        chunk = np.arange(70, dtype=np.uint8)
        slices = slicing.split_chunk(chunk, 16)
        assert len(slices) == 5
        assert len(slices[-1]) == 6
        assert np.array_equal(slicing.join_slices(slices), chunk)

    def test_slices_are_views(self):
        chunk = np.zeros(32, dtype=np.uint8)
        slices = slicing.split_chunk(chunk, 16)
        chunk[0] = 7
        assert slices[0][0] == 7

    def test_empty_chunk(self):
        assert slicing.split_chunk(np.zeros(0, dtype=np.uint8), 8) == []
        assert len(slicing.join_slices([])) == 0

    def test_bad_slice_size(self):
        with pytest.raises(ValueError):
            slicing.split_chunk(np.zeros(8, dtype=np.uint8), 0)

    @given(st.integers(1, 500), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, length, slice_size):
        rng = np.random.default_rng(length * 64 + slice_size)
        chunk = rng.integers(0, 256, length, dtype=np.uint8)
        slices = slicing.split_chunk(chunk, slice_size)
        assert len(slices) == slicing.slice_count(length, slice_size)
        assert np.array_equal(slicing.join_slices(slices), chunk)


class TestPad:
    def test_pad_to_multiple(self):
        chunk = np.ones(10, dtype=np.uint8)
        padded = slicing.pad_chunk(chunk, 8)
        assert len(padded) == 16
        assert np.array_equal(padded[:10], chunk)
        assert not padded[10:].any()

    def test_pad_noop_when_aligned(self):
        chunk = np.ones(16, dtype=np.uint8)
        padded = slicing.pad_chunk(chunk, 8)
        assert len(padded) == 16
        assert padded is not chunk  # still a copy

    def test_pad_bad_size(self):
        with pytest.raises(ValueError):
            slicing.pad_chunk(np.zeros(4, dtype=np.uint8), -1)


class TestSliceCount:
    def test_exact(self):
        assert slicing.slice_count(64, 16) == 4

    def test_remainder(self):
        assert slicing.slice_count(65, 16) == 5

    def test_zero_chunk(self):
        assert slicing.slice_count(0, 16) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            slicing.slice_count(10, 0)
        with pytest.raises(ValueError):
            slicing.slice_count(-1, 4)


class TestSegment:
    def test_length(self):
        assert Segment(2.0, 5.0).length == 3.0

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            Segment(5.0, 2.0)

    def test_overlaps(self):
        assert Segment(0, 10).overlaps(Segment(5, 15))
        assert not Segment(0, 10).overlaps(Segment(10, 20))  # half-open

    def test_intersection(self):
        inter = Segment(0, 10).intersection(Segment(5, 15))
        assert (inter.start, inter.stop) == (5, 10)
        assert Segment(0, 5).intersection(Segment(5, 10)) is None

    def test_scaled(self):
        s = Segment(0.25, 0.5).scaled(100)
        assert (s.start, s.stop) == (25.0, 50.0)

    def test_slice_span(self):
        assert Segment(0, 100).slice_span(16) == (0, 7)
        assert Segment(16, 32).slice_span(16) == (1, 2)

    def test_slice_span_bad_size(self):
        with pytest.raises(ValueError):
            Segment(0, 10).slice_span(0)


class TestPartition:
    def test_proportional(self):
        segs = slicing.partition(100.0, [1, 1, 2])
        assert [round(s.length) for s in segs] == [25, 25, 50]

    def test_tiles_exactly(self):
        segs = slicing.partition(1.0, [3, 7, 11, 0.5])
        assert segs[0].start == 0.0
        assert segs[-1].stop == 1.0
        for a, b in zip(segs, segs[1:]):
            assert a.stop == b.start

    def test_zero_weights(self):
        segs = slicing.partition(10.0, [0, 1, 0])
        assert segs[0].length == 0.0
        assert segs[1].length == 10.0
        assert segs[2].length == 0.0

    def test_all_zero_weights(self):
        segs = slicing.partition(10.0, [0, 0])
        assert all(s.length == 0 for s in segs)

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            slicing.partition(10.0, [1, -1])

    def test_negative_total_raises(self):
        with pytest.raises(ValueError):
            slicing.partition(-1.0, [1])
