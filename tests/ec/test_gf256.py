"""GF(2^8) arithmetic: table correctness, field axioms, chunk kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec import gf256

elems = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_table_starts_at_one(self):
        assert gf256.EXP_TABLE[0] == 1

    def test_exp_table_periodic(self):
        assert np.array_equal(gf256.EXP_TABLE[:255], gf256.EXP_TABLE[255:510])

    def test_exp_covers_all_nonzero_elements(self):
        assert sorted(set(int(x) for x in gf256.EXP_TABLE[:255])) == list(
            range(1, 256)
        )

    def test_log_exp_roundtrip(self):
        for a in range(1, 256):
            assert gf256.EXP_TABLE[gf256.LOG_TABLE[a]] == a

    def test_log_of_zero_is_sentinel(self):
        assert gf256.LOG_TABLE[0] == -1

    def test_generator_order_is_255(self):
        # g^255 == 1 and no smaller positive power is 1
        assert int(gf256.power(gf256.GENERATOR, 255)) == 1
        powers = {int(gf256.power(gf256.GENERATOR, e)) for e in range(1, 255)}
        assert 1 not in powers

    def test_mul_table_matches_log_form(self):
        a = np.arange(256, dtype=np.uint8)
        for b in (1, 2, 3, 87, 255):
            via_table = gf256.MUL_TABLE[a, b]
            expected = np.zeros(256, dtype=np.uint8)
            logs = (gf256.LOG_TABLE[a[1:]] + gf256.LOG_TABLE[b]) % 255
            expected[1:] = gf256.EXP_TABLE[logs]
            assert np.array_equal(via_table, expected)

    def test_inv_table(self):
        for a in range(1, 256):
            assert int(gf256.mul(a, gf256.INV_TABLE[a])) == 1

    def test_inv_table_zero_entry_is_zero(self):
        assert gf256.INV_TABLE[0] == 0


class TestScalarOps:
    def test_add_is_xor(self):
        assert int(gf256.add(0b1010, 0b0110)) == 0b1100

    def test_sub_equals_add(self):
        assert gf256.sub is gf256.add

    def test_mul_by_zero(self):
        assert int(gf256.mul(0, 123)) == 0
        assert int(gf256.mul(123, 0)) == 0

    def test_mul_by_one(self):
        for a in (1, 7, 200, 255):
            assert int(gf256.mul(a, 1)) == a

    def test_known_product(self):
        # 2 * 2 = 4 (polynomial x * x = x^2, no reduction)
        assert int(gf256.mul(2, 2)) == 4
        # 0x80 * 2 = 0x100 reduced by 0x11B -> 0x1B
        assert int(gf256.mul(0x80, 2)) == 0x1B

    def test_div_inverse_of_mul(self):
        assert int(gf256.div(gf256.mul(87, 19), 19)) == 87

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.div(5, 0)

    def test_div_array_with_one_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.div(np.array([1, 2]), np.array([3, 0]))

    def test_inv_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.inv(0)

    def test_power_zero_exponent(self):
        assert int(gf256.power(0, 0)) == 1
        assert int(gf256.power(77, 0)) == 1

    def test_power_of_zero(self):
        assert int(gf256.power(0, 5)) == 0

    def test_power_matches_repeated_mul(self):
        acc = 1
        for e in range(1, 10):
            acc = int(gf256.mul(acc, 3))
            assert int(gf256.power(3, e)) == acc

    def test_power_negative_exponent_raises(self):
        with pytest.raises(ValueError):
            gf256.power(3, -1)

    def test_power_array_input(self):
        out = gf256.power(np.array([0, 1, 2], dtype=np.uint8), 2)
        assert list(out) == [0, 1, 4]


class TestFieldAxioms:
    @given(elems, elems)
    def test_add_commutative(self, a, b):
        assert int(gf256.add(a, b)) == int(gf256.add(b, a))

    @given(elems, elems)
    def test_mul_commutative(self, a, b):
        assert int(gf256.mul(a, b)) == int(gf256.mul(b, a))

    @given(elems, elems, elems)
    def test_mul_associative(self, a, b, c):
        left = gf256.mul(gf256.mul(a, b), c)
        right = gf256.mul(a, gf256.mul(b, c))
        assert int(left) == int(right)

    @given(elems, elems, elems)
    def test_distributive(self, a, b, c):
        left = gf256.mul(a, gf256.add(b, c))
        right = gf256.add(gf256.mul(a, b), gf256.mul(a, c))
        assert int(left) == int(right)

    @given(elems)
    def test_additive_inverse_is_self(self, a):
        assert int(gf256.add(a, a)) == 0

    @given(nonzero)
    def test_multiplicative_inverse(self, a):
        assert int(gf256.mul(a, gf256.inv(a))) == 1

    @given(nonzero, nonzero)
    def test_no_zero_divisors(self, a, b):
        assert int(gf256.mul(a, b)) != 0

    @given(elems, nonzero)
    def test_div_mul_roundtrip(self, a, b):
        assert int(gf256.mul(gf256.div(a, b), b)) == a


class TestChunkKernels:
    def setup_method(self):
        rng = np.random.default_rng(42)
        self.chunk = rng.integers(0, 256, 4096, dtype=np.uint8)
        self.other = rng.integers(0, 256, 4096, dtype=np.uint8)

    def test_mul_chunk_zero_coeff(self):
        assert not gf256.mul_chunk(0, self.chunk).any()

    def test_mul_chunk_one_is_copy(self):
        out = gf256.mul_chunk(1, self.chunk)
        assert np.array_equal(out, self.chunk)
        assert out is not self.chunk

    def test_mul_chunk_matches_elementwise(self):
        out = gf256.mul_chunk(77, self.chunk)
        expected = gf256.mul(np.full_like(self.chunk, 77), self.chunk)
        assert np.array_equal(out, expected)

    def test_addmul_chunk_in_place(self):
        acc = self.chunk.copy()
        result = gf256.addmul_chunk(acc, 5, self.other)
        assert result is acc
        expected = np.bitwise_xor(self.chunk, gf256.mul_chunk(5, self.other))
        assert np.array_equal(acc, expected)

    def test_addmul_chunk_zero_coeff_noop(self):
        acc = self.chunk.copy()
        gf256.addmul_chunk(acc, 0, self.other)
        assert np.array_equal(acc, self.chunk)

    def test_dot_single_term(self):
        out = gf256.dot([9], [self.chunk])
        assert np.array_equal(out, gf256.mul_chunk(9, self.chunk))

    def test_dot_linearity(self):
        d1 = gf256.dot([3, 7], [self.chunk, self.other])
        manual = np.bitwise_xor(
            gf256.mul_chunk(3, self.chunk), gf256.mul_chunk(7, self.other)
        )
        assert np.array_equal(d1, manual)

    def test_dot_empty_raises(self):
        with pytest.raises(ValueError):
            gf256.dot([], [])

    def test_dot_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            gf256.dot([1, 2], [self.chunk])

    def test_dot_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            gf256.dot([1, 2], [self.chunk, self.chunk[:10]])


class TestOutParameters:
    """Preallocated-buffer forms of the data-plane kernels."""

    def setup_method(self):
        rng = np.random.default_rng(11)
        self.chunk = rng.integers(0, 256, 4096, dtype=np.uint8)
        self.other = rng.integers(0, 256, 4096, dtype=np.uint8)

    @pytest.mark.parametrize("coeff", [0, 1, 2, 7, 255])
    def test_mul_chunk_out_matches_allocating(self, coeff):
        out = np.empty_like(self.chunk)
        result = gf256.mul_chunk(coeff, self.chunk, out=out)
        assert result is out
        assert np.array_equal(out, gf256.mul_chunk(coeff, self.chunk))

    def test_mul_chunk_out_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            gf256.mul_chunk(3, self.chunk, out=np.empty(10, dtype=np.uint8))

    def test_mul_chunk_out_dtype_mismatch_raises(self):
        with pytest.raises(ValueError):
            gf256.mul_chunk(3, self.chunk, out=np.empty_like(self.chunk, dtype=np.uint16))

    @pytest.mark.parametrize("coeff", [0, 1, 9])
    def test_addmul_chunk_scratch_matches_plain(self, coeff):
        acc_a = self.other.copy()
        acc_b = self.other.copy()
        scratch = np.empty_like(self.chunk)
        gf256.addmul_chunk(acc_a, coeff, self.chunk)
        gf256.addmul_chunk(acc_b, coeff, self.chunk, scratch)
        assert np.array_equal(acc_a, acc_b)

    def test_dot_out_matches_allocating(self):
        coeffs = [3, 7, 11]
        chunks = [self.chunk, self.other, self.chunk ^ self.other]
        out = np.empty_like(self.chunk)
        result = gf256.dot(coeffs, chunks, out=out)
        assert result is out
        assert np.array_equal(out, gf256.dot(coeffs, chunks))

    def test_dot_out_is_overwritten_not_accumulated(self):
        out = np.full_like(self.chunk, 0xFF)
        gf256.dot([1], [self.chunk], out=out)
        assert np.array_equal(out, self.chunk)

    def test_dot_out_bad_buffer_raises(self):
        with pytest.raises(ValueError):
            gf256.dot([1], [self.chunk], out=np.empty(3, dtype=np.uint8))
