"""Reed-Solomon codes: encode/decode/repair round-trips and invariants."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import RSCode


def make_stripe(code: RSCode, length: int = 256, seed: int = 0):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (code.k, length), dtype=np.uint8)
    return data, code.encode(data)


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RSCode(4, 4)
        with pytest.raises(ValueError):
            RSCode(3, 0)
        with pytest.raises(ValueError):
            RSCode(300, 100)

    def test_repr_mentions_params(self):
        assert "9" in repr(RSCode(9, 6)) and "6" in repr(RSCode(9, 6))


class TestEncode:
    def test_systematic(self):
        code = RSCode(6, 4)
        data, stripe = make_stripe(code)
        assert np.array_equal(stripe[:4], data)

    def test_stripe_shape(self):
        code = RSCode(9, 6)
        _, stripe = make_stripe(code, length=100)
        assert stripe.shape == (9, 100)

    def test_wrong_data_shape_raises(self):
        code = RSCode(6, 4)
        with pytest.raises(ValueError):
            code.encode(np.zeros((3, 10), dtype=np.uint8))

    def test_linearity(self):
        """encode(a ^ b) == encode(a) ^ encode(b)."""
        code = RSCode(5, 3)
        da, sa = make_stripe(code, seed=1)
        db, sb = make_stripe(code, seed=2)
        combined = code.encode(np.bitwise_xor(da, db))
        assert np.array_equal(combined, np.bitwise_xor(sa, sb))

    def test_zero_data_zero_parity(self):
        code = RSCode(6, 4)
        stripe = code.encode(np.zeros((4, 16), dtype=np.uint8))
        assert not stripe.any()


class TestDecode:
    @pytest.mark.parametrize("n,k", [(5, 3), (6, 4), (9, 6)])
    def test_decode_from_every_k_subset(self, n, k):
        code = RSCode(n, k)
        data, stripe = make_stripe(code, length=64)
        for subset in combinations(range(n), k):
            got = code.decode({i: stripe[i] for i in subset})
            assert np.array_equal(got, data), subset

    def test_decode_with_extra_chunks(self):
        code = RSCode(6, 4)
        data, stripe = make_stripe(code)
        got = code.decode({i: stripe[i] for i in range(6)})
        assert np.array_equal(got, data)

    def test_decode_too_few_raises(self):
        code = RSCode(6, 4)
        _, stripe = make_stripe(code)
        with pytest.raises(ValueError):
            code.decode({0: stripe[0], 1: stripe[1]})

    @given(st.integers(0, 2**32 - 1), st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_decode_random_subsets_property(self, seed, length):
        code = RSCode(9, 6)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (6, length), dtype=np.uint8)
        stripe = code.encode(data)
        subset = rng.choice(9, 6, replace=False)
        got = code.decode({int(i): stripe[int(i)] for i in subset})
        assert np.array_equal(got, data)


class TestRepair:
    @pytest.mark.parametrize("n,k", [(5, 3), (6, 4), (9, 6), (14, 10)])
    def test_repair_every_chunk(self, n, k):
        code = RSCode(n, k)
        _, stripe = make_stripe(code, length=32)
        for lost in range(n):
            available = {i: stripe[i] for i in range(n) if i != lost}
            got = code.repair(lost, available)
            assert np.array_equal(got, stripe[lost]), lost

    def test_repair_equation_coefficients_nonzero(self):
        """MDS repair never has a passive helper (paper's pipelining premise)."""
        code = RSCode(9, 6)
        for lost in range(9):
            for helpers in [tuple(i for i in range(9) if i != lost)[:6]]:
                eq = code.repair_equation(lost, helpers)
                assert all(c != 0 for c in eq.coeffs)

    def test_repair_equation_evaluate(self):
        code = RSCode(6, 4)
        _, stripe = make_stripe(code)
        eq = code.repair_equation(2, (0, 1, 4, 5))
        got = eq.evaluate({i: stripe[i] for i in eq.helpers})
        assert np.array_equal(got, stripe[2])

    def test_repair_equation_missing_helper_chunk(self):
        code = RSCode(6, 4)
        _, stripe = make_stripe(code)
        eq = code.repair_equation(2, (0, 1, 4, 5))
        with pytest.raises(KeyError):
            eq.evaluate({0: stripe[0]})

    def test_repair_equation_default_helpers(self):
        code = RSCode(6, 4)
        eq = code.repair_equation(0)
        assert eq.helpers == (1, 2, 3, 4)

    def test_repair_equation_validation(self):
        code = RSCode(6, 4)
        with pytest.raises(ValueError):
            code.repair_equation(6)  # out of range
        with pytest.raises(ValueError):
            code.repair_equation(0, (0, 1, 2, 3))  # includes lost
        with pytest.raises(ValueError):
            code.repair_equation(0, (1, 1, 2, 3))  # duplicate
        with pytest.raises(ValueError):
            code.repair_equation(0, (1, 2, 3))  # too few

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_repair_random_helper_sets(self, seed):
        code = RSCode(9, 6)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (6, 48), dtype=np.uint8)
        stripe = code.encode(data)
        lost = int(rng.integers(0, 9))
        pool = [i for i in range(9) if i != lost]
        helpers = tuple(int(x) for x in rng.choice(pool, 6, replace=False))
        eq = code.repair_equation(lost, helpers)
        got = eq.evaluate({i: stripe[i] for i in helpers})
        assert np.array_equal(got, stripe[lost])

    def test_repair_linear_combination_pipelinable(self):
        """Partial sums over helper prefixes telescope to the lost chunk —
        the algebra behind chain pipelining (paper Eq. 1)."""
        code = RSCode(5, 3)
        _, stripe = make_stripe(code)
        eq = code.repair_equation(0, (1, 2, 3))
        from repro.ec import gf256

        partial = np.zeros_like(stripe[0])
        for coeff, helper in zip(eq.coeffs, eq.helpers):
            partial = np.bitwise_xor(partial, gf256.mul_chunk(coeff, stripe[helper]))
        assert np.array_equal(partial, stripe[0])


class TestVerifyStripe:
    def test_valid_stripe(self):
        code = RSCode(6, 4)
        _, stripe = make_stripe(code)
        assert code.verify_stripe(stripe)

    def test_corrupted_stripe(self):
        code = RSCode(6, 4)
        _, stripe = make_stripe(code)
        stripe = stripe.copy()
        stripe[5, 0] ^= 1
        assert not code.verify_stripe(stripe)

    def test_wrong_shape_raises(self):
        code = RSCode(6, 4)
        with pytest.raises(ValueError):
            code.verify_stripe(np.zeros((5, 8), dtype=np.uint8))

    def test_vandermonde_construction_roundtrip(self):
        code = RSCode(9, 6, construction="vandermonde")
        data, stripe = make_stripe(code)
        assert code.verify_stripe(stripe)
        got = code.decode({i: stripe[i] for i in (0, 2, 4, 6, 7, 8)})
        assert np.array_equal(got, data)


class TestEquationCache:
    def test_cache_returns_identical_object(self):
        code = RSCode(9, 6)
        a = code.repair_equation(0, (1, 2, 3, 4, 5, 6))
        b = code.repair_equation(0, (1, 2, 3, 4, 5, 6))
        assert a is b

    def test_cache_distinguishes_helper_sets(self):
        code = RSCode(9, 6)
        a = code.repair_equation(0, (1, 2, 3, 4, 5, 6))
        b = code.repair_equation(0, (1, 2, 3, 4, 5, 7))
        assert a is not b and a.coeffs != b.coeffs

    def test_cache_bounded(self):
        code = RSCode(9, 6)
        code.CACHE_LIMIT = 4
        from itertools import combinations

        for helpers in list(combinations(range(1, 9), 6))[:10]:
            code.repair_equation(0, helpers)
        assert len(code._equation_cache) <= 4

    def test_cached_equation_still_correct(self):
        code = RSCode(6, 4)
        _, stripe = make_stripe(code)
        for _ in range(3):
            eq = code.repair_equation(1, (0, 2, 4, 5))
            got = eq.evaluate({i: stripe[i] for i in eq.helpers})
            assert np.array_equal(got, stripe[1])
