"""GF(2^8) matrix algebra: products, inversion, code-matrix builders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ec import gf256, matrix

gf_matrix = lambda r, c: hnp.arrays(  # noqa: E731
    np.uint8, (r, c), elements=st.integers(0, 255)
)


class TestMatmul:
    def test_identity_is_neutral(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (4, 4), dtype=np.uint8)
        assert np.array_equal(matrix.matmul(matrix.identity(4), a), a)
        assert np.array_equal(matrix.matmul(a, matrix.identity(4)), a)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            matrix.matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))

    def test_known_small_product(self):
        a = np.array([[1, 2]], dtype=np.uint8)
        b = np.array([[3], [4]], dtype=np.uint8)
        expected = gf256.add(gf256.mul(1, 3), gf256.mul(2, 4))
        assert matrix.matmul(a, b)[0, 0] == int(expected)

    @given(gf_matrix(3, 4), gf_matrix(4, 2), gf_matrix(2, 3))
    @settings(max_examples=30, deadline=None)
    def test_associative(self, a, b, c):
        left = matrix.matmul(matrix.matmul(a, b), c)
        right = matrix.matmul(a, matrix.matmul(b, c))
        assert np.array_equal(left, right)

    def test_matvec_chunks_matches_matmul(self):
        rng = np.random.default_rng(1)
        m = rng.integers(0, 256, (3, 5), dtype=np.uint8)
        chunks = rng.integers(0, 256, (5, 7), dtype=np.uint8)
        assert np.array_equal(
            matrix.matvec_chunks(m, chunks), matrix.matmul(m, chunks)
        )

    def test_matvec_chunks_shape_check(self):
        with pytest.raises(ValueError):
            matrix.matvec_chunks(np.zeros((2, 3), np.uint8), np.zeros((4, 5), np.uint8))


class TestInverse:
    def test_identity_inverse(self):
        assert np.array_equal(matrix.inverse(matrix.identity(5)), matrix.identity(5))

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            a = rng.integers(0, 256, (4, 4), dtype=np.uint8)
            if not matrix.is_invertible(a):
                continue
            inv = matrix.inverse(a)
            assert np.array_equal(matrix.matmul(a, inv), matrix.identity(4))
            assert np.array_equal(matrix.matmul(inv, a), matrix.identity(4))

    def test_singular_raises(self):
        a = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            matrix.inverse(a)

    def test_zero_matrix_singular(self):
        assert not matrix.is_invertible(np.zeros((3, 3), dtype=np.uint8))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            matrix.inverse(np.zeros((2, 3), dtype=np.uint8))

    def test_pivot_swapping(self):
        # leading zero forces a row swap
        a = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        inv = matrix.inverse(a)
        assert np.array_equal(matrix.matmul(a, inv), matrix.identity(2))


class TestConstructions:
    def test_vandermonde_first_column_ones(self):
        v = matrix.vandermonde(6, 4)
        assert (v[:, 0] == 1).all()

    def test_vandermonde_rows_distinct(self):
        v = matrix.vandermonde(10, 4)
        assert len({tuple(row) for row in v}) == 10

    def test_vandermonde_square_invertible(self):
        for size in (2, 4, 8):
            assert matrix.is_invertible(matrix.vandermonde(size, size))

    def test_vandermonde_too_many_rows(self):
        with pytest.raises(ValueError):
            matrix.vandermonde(256, 4)

    def test_cauchy_all_nonzero(self):
        c = matrix.cauchy(4, 10)
        assert (c != 0).all()

    def test_cauchy_square_submatrices_invertible(self):
        c = matrix.cauchy(4, 4)
        assert matrix.is_invertible(c)
        assert matrix.is_invertible(c[:2, :2])
        assert matrix.is_invertible(c[1:3, 2:4])

    def test_cauchy_size_limit(self):
        with pytest.raises(ValueError):
            matrix.cauchy(200, 100)

    @pytest.mark.parametrize("construction", ["cauchy", "vandermonde"])
    def test_systematic_generator_top_is_identity(self, construction):
        g = matrix.systematic_generator(9, 6, construction=construction)
        assert np.array_equal(g[:6], matrix.identity(6))

    @pytest.mark.parametrize("construction", ["cauchy", "vandermonde"])
    @pytest.mark.parametrize("n,k", [(5, 3), (6, 4), (9, 6), (14, 10)])
    def test_systematic_generator_mds(self, construction, n, k):
        """Every k-subset of rows must be invertible (MDS property)."""
        from itertools import combinations

        g = matrix.systematic_generator(n, k, construction=construction)
        rng = np.random.default_rng(3)
        subsets = list(combinations(range(n), k))
        if len(subsets) > 40:
            subsets = [subsets[i] for i in rng.choice(len(subsets), 40, replace=False)]
        for rows in subsets:
            assert matrix.is_invertible(g[list(rows)]), rows

    def test_systematic_generator_bad_params(self):
        with pytest.raises(ValueError):
            matrix.systematic_generator(4, 4)
        with pytest.raises(ValueError):
            matrix.systematic_generator(3, 0)

    def test_unknown_construction(self):
        with pytest.raises(ValueError):
            matrix.systematic_generator(5, 3, construction="fountain")


class TestMatvecChunksOut:
    def setup_method(self):
        rng = np.random.default_rng(13)
        self.mat = np.asarray(rng.integers(0, 256, (4, 6)), dtype=np.uint8)
        self.chunks = rng.integers(0, 256, (6, 2048), dtype=np.uint8)

    def test_out_matches_allocating(self):
        out = np.empty((4, 2048), dtype=np.uint8)
        result = matrix.matvec_chunks(self.mat, self.chunks, out=out)
        assert result is out
        assert np.array_equal(out, matrix.matvec_chunks(self.mat, self.chunks))

    def test_out_is_overwritten(self):
        out = np.full((4, 2048), 0xAA, dtype=np.uint8)
        matrix.matvec_chunks(self.mat, self.chunks, out=out)
        assert np.array_equal(out, matrix.matvec_chunks(self.mat, self.chunks))

    def test_bad_out_shape_raises(self):
        with pytest.raises(ValueError):
            matrix.matvec_chunks(
                self.mat, self.chunks, out=np.empty((3, 2048), dtype=np.uint8)
            )

    def test_bad_out_dtype_raises(self):
        with pytest.raises(ValueError):
            matrix.matvec_chunks(
                self.mat, self.chunks, out=np.empty((4, 2048), dtype=np.uint16)
            )
