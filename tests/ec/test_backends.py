"""Backend equivalence: every fast path is byte-identical to naive.

The table / fused / parallel backends restructure GF(2^8) arithmetic
around pair-product and packed multi-row gather tables; because field
arithmetic is exact, every backend must agree with the
:mod:`repro.ec.gf256` / :mod:`repro.ec.matrix` reference kernels to the
byte on *every* input — random coefficients (including the 0 and 1 fast
paths), odd lengths, unaligned views, and caller-provided ``out=``
buffers.  Hypothesis drives the small-size property sweep; fixed-seed
tests cover the blocked-kernel sizes the sweep would make slow.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import RSCode, available_backends, backend as ec_backend
from repro.ec import gf256, kernels, matrix
from repro.ec.backend import MIN_TABLE_BYTES

pytestmark = pytest.mark.ec

FAST_BACKENDS = ("table", "fused", "parallel")
BIG = MIN_TABLE_BYTES * 5 + 3  # odd, well above the naive-fallback gate


def _chunks(rng: np.random.Generator, k: int, length: int) -> np.ndarray:
    return rng.integers(0, 256, size=(k, length), dtype=np.uint8)


# --------------------------------------------------------------------- #
# hypothesis property sweep (small sizes, exhaustive edge shapes)       #
# --------------------------------------------------------------------- #

coeff_lists = st.lists(st.integers(0, 255), min_size=1, max_size=6)


@given(
    coeffs=coeff_lists,
    length=st.integers(1, 130),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_dot_blocked_matches_naive(coeffs, length, seed):
    rng = np.random.default_rng(seed)
    chunks = _chunks(rng, len(coeffs), length)
    expected = gf256.dot(coeffs, chunks)
    got = kernels.dot_blocked(coeffs, list(chunks))
    assert np.array_equal(expected, got)


@given(
    m=st.integers(1, 7),
    p=st.integers(1, 6),
    length=st.integers(1, 130),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_fused_matmul_matches_naive(m, p, length, seed):
    rng = np.random.default_rng(seed)
    mat = rng.integers(0, 256, size=(m, p), dtype=np.uint8)
    chunks = _chunks(rng, p, length)
    expected = matrix.matvec_chunks(mat, chunks)
    got = kernels.fused_matmul(mat, list(chunks))
    assert np.array_equal(expected, got)


@given(
    coeff=st.integers(0, 255),
    length=st.integers(1, 130),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_mul_and_addmul_blocked_match_naive(coeff, length, seed):
    rng = np.random.default_rng(seed)
    chunk = _chunks(rng, 1, length)[0]
    assert np.array_equal(
        gf256.mul_chunk(coeff, chunk), kernels.mul_chunk_blocked(coeff, chunk)
    )
    acc_ref = _chunks(rng, 1, length)[0]
    acc_blk = acc_ref.copy()
    gf256.addmul_chunk(acc_ref, coeff, chunk)
    kernels.addmul_chunk_blocked(acc_blk, coeff, chunk)
    assert np.array_equal(acc_ref, acc_blk)


# --------------------------------------------------------------------- #
# blocked-size equivalence (above the naive-fallback gate)              #
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("name", FAST_BACKENDS)
@pytest.mark.parametrize("length", [BIG, 2 * MIN_TABLE_BYTES])
def test_backend_dot_equivalence(name, length):
    rng = np.random.default_rng(11)
    k = 6
    chunks = _chunks(rng, k, length)
    # exercise the 0 / 1 fast paths alongside general coefficients
    coeffs = [0, 1, 173, 1, 0, 255]
    expected = gf256.dot(coeffs, chunks)
    be = ec_backend.resolve(name)
    out = np.empty(length, dtype=np.uint8)
    scratch = np.empty(length, dtype=np.uint8)
    got = be.dot(coeffs, chunks, out=out, scratch=scratch)
    assert got is out
    assert np.array_equal(expected, got)


@pytest.mark.parametrize("name", FAST_BACKENDS)
def test_backend_matmul_equivalence(name):
    rng = np.random.default_rng(12)
    mat = rng.integers(0, 256, size=(9, 6), dtype=np.uint8)
    mat[2] = 0  # an all-zero output row
    mat[:, 3] = 0  # an all-zero input column
    chunks = _chunks(rng, 6, BIG)
    expected = matrix.matvec_chunks(mat, chunks)
    be = ec_backend.resolve(name)
    out = np.empty((9, BIG), dtype=np.uint8)
    got = be.matmul_chunks(mat, chunks, out=out)
    assert got is out
    assert np.array_equal(expected, got)


@pytest.mark.parametrize("name", FAST_BACKENDS)
def test_backend_unaligned_views(name):
    """Odd-offset slices of a larger buffer (no uint16 view) still agree."""
    rng = np.random.default_rng(13)
    backing = rng.integers(0, 256, size=(4, BIG + 7), dtype=np.uint8)
    chunks = [row[3 : 3 + BIG] for row in backing]  # odd start address
    coeffs = [9, 1, 88, 250]
    expected = gf256.dot(coeffs, chunks)
    got = ec_backend.resolve(name).dot(coeffs, chunks)
    assert np.array_equal(expected, got)


@pytest.mark.parametrize("name", FAST_BACKENDS)
def test_out_aliasing_input_rejected(name):
    rng = np.random.default_rng(14)
    chunks = _chunks(rng, 3, BIG)
    be = ec_backend.resolve(name)
    with pytest.raises(ValueError, match="alias"):
        be.dot([5, 6, 7], chunks, out=chunks[0])
    with pytest.raises(ValueError, match="alias"):
        be.matmul_chunks(
            np.full((2, 3), 7, dtype=np.uint8), chunks, out=chunks[:2]
        )
    with pytest.raises(ValueError, match="alias"):
        be.mul_chunk(42, chunks[0], out=chunks[0])


def test_zero_and_one_coefficient_fast_paths():
    rng = np.random.default_rng(15)
    chunks = _chunks(rng, 3, BIG)
    for name in FAST_BACKENDS:
        be = ec_backend.resolve(name)
        assert not be.dot([0, 0, 0], chunks).any()
        expected = chunks[0] ^ chunks[1] ^ chunks[2]
        assert np.array_equal(be.dot([1, 1, 1], chunks), expected)
        assert np.array_equal(be.mul_chunk(1, chunks[0]), chunks[0])
        assert not be.mul_chunk(0, chunks[0]).any()


def test_small_payloads_defer_to_naive_but_agree():
    rng = np.random.default_rng(16)
    chunks = _chunks(rng, 4, MIN_TABLE_BYTES // 2)
    coeffs = [3, 0, 1, 200]
    expected = gf256.dot(coeffs, chunks)
    for name in FAST_BACKENDS:
        got = ec_backend.resolve(name).dot(coeffs, chunks)
        assert np.array_equal(expected, got)


def test_gf256_dot_scratch_reuse():
    """Satellite: caller-owned scratch gives identical results, no alloc."""
    rng = np.random.default_rng(17)
    chunks = _chunks(rng, 4, 513)
    coeffs = [7, 9, 0, 1]
    expected = gf256.dot(coeffs, chunks)
    scratch = np.empty(513, dtype=np.uint8)
    out = np.empty(513, dtype=np.uint8)
    got = gf256.dot(coeffs, chunks, out=out, scratch=scratch)
    assert got is out
    assert np.array_equal(expected, got)
    with pytest.raises(ValueError):
        gf256.dot(coeffs, chunks, scratch=np.empty(7, dtype=np.uint8))


# --------------------------------------------------------------------- #
# dispatch layer                                                        #
# --------------------------------------------------------------------- #

def test_available_backends_registry():
    assert available_backends() == ("naive", "table", "fused", "parallel")


def test_resolve_names_and_instances():
    be = ec_backend.resolve("table")
    assert be.name == "table"
    assert ec_backend.resolve(be) is be
    with pytest.raises(ValueError, match="unknown EC backend"):
        ec_backend.resolve("simd")
    with pytest.raises(TypeError, match="lacks required method"):
        ec_backend.resolve(object())


def test_use_backend_scoping():
    before = ec_backend.get_backend()
    with ec_backend.use_backend("naive") as be:
        assert be.name == "naive"
        assert ec_backend.get_backend() is be
    assert ec_backend.get_backend() is before


def test_set_backend_rejects_none():
    with pytest.raises(ValueError):
        ec_backend.set_backend(None)


def test_env_var_selects_default_backend(monkeypatch):
    monkeypatch.setattr(ec_backend, "_current", None)
    monkeypatch.setenv("REPRO_EC_BACKEND", "table")
    try:
        assert ec_backend.get_backend().name == "table"
    finally:
        ec_backend._current = None  # re-resolve lazily for later tests
    monkeypatch.setenv("REPRO_EC_BACKEND", "warp")
    monkeypatch.setattr(ec_backend, "_current", None)
    with pytest.raises(ValueError, match="REPRO_EC_BACKEND"):
        ec_backend.get_backend()


def test_rscode_per_instance_backend_override():
    rng = np.random.default_rng(18)
    data = _chunks(rng, 4, BIG)
    ref = RSCode(6, 4, backend="naive")
    fast = RSCode(6, 4, backend="fused")
    assert fast.backend.name == "fused"
    assert np.array_equal(ref.encode(data), fast.encode(data))
    with ec_backend.use_backend("table"):
        floating = RSCode(6, 4)
        assert floating.backend.name == "table"
        assert np.array_equal(floating.encode(data), ref.encode(data))


def test_rscode_decode_matrix_memoised():
    rng = np.random.default_rng(19)
    code = RSCode(6, 4)
    data = _chunks(rng, 4, 512)
    stripe = code.encode(data)
    avail = {i: stripe[i] for i in (0, 2, 4, 5)}
    assert np.array_equal(code.decode(avail), data)
    assert (0, 2, 4, 5) in code._decode_cache
    cached = code._decode_cache[(0, 2, 4, 5)]
    assert np.array_equal(code.decode(avail), data)
    assert code._decode_cache[(0, 2, 4, 5)] is cached


def test_fused_table_construction_identities():
    """Nibble/pair tables compose exactly to the full product row."""
    for c in (0, 1, 2, 87, 173, 255):
        row = kernels.coeff_row(c)
        assert np.array_equal(row, gf256.MUL_TABLE[c])
        pair = kernels.pair_table(c)
        b = np.arange(256, dtype=np.uint16)
        idx = (b[:, None] << 8 | b[None, :]).reshape(-1)
        lo = gf256.MUL_TABLE[c][idx & 0xFF].astype(np.uint16)
        hi = gf256.MUL_TABLE[c][idx >> 8].astype(np.uint16)
        assert np.array_equal(pair[idx], lo | hi << 8)


def test_fused_cache_bounded(monkeypatch):
    monkeypatch.setattr(kernels, "MAX_FUSED_CACHE_BYTES", 4 * 1024 * 1024)
    kernels.clear_table_caches()
    rng = np.random.default_rng(20)
    for _ in range(12):  # each (8, 6) matrix costs ~3 MiB of fused tables
        mat = rng.integers(1, 256, size=(8, 6), dtype=np.uint8)
        kernels.fused_tables(mat)
    assert kernels._fused_cache_bytes <= 2 * 4 * 1024 * 1024
    kernels.clear_table_caches()
