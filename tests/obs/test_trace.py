"""Tracer/Span/NullTracer unit behaviour."""

import pytest

from repro.obs import NULL_SPAN, NULL_TRACER, NullTracer, Tracer


class TestSpanTree:
    def test_start_end_roundtrip(self):
        tr = Tracer()
        span = tr.start_span("repair s1", kind="repair", t=1.0, stripe="s1")
        assert span.start == 1.0 and span.end is None
        assert span.duration is None
        tr.end_span(span, t=3.5, status="completed")
        assert span.end == 3.5
        assert span.duration == 2.5
        assert span.attrs == {"stripe": "s1", "status": "completed"}

    def test_parenting(self):
        tr = Tracer()
        root = tr.start_span("repair", kind="repair", t=0.0)
        child = tr.start_span("attempt 1", kind="attempt", parent=root, t=0.0)
        grand = tr.start_span("pipeline 0", kind="pipeline", parent=child, t=0.0)
        assert tr.roots == [root]
        assert root.children == [child]
        assert child.children == [grand]
        assert grand.parent_id == child.span_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None

    def test_span_ids_unique(self):
        tr = Tracer()
        ids = {tr.start_span(f"s{i}", t=0.0).span_id for i in range(50)}
        assert len(ids) == 50

    def test_end_clamps_to_start(self):
        tr = Tracer()
        span = tr.start_span("x", t=5.0)
        tr.end_span(span, t=1.0)
        assert span.end == 5.0  # never negative durations

    def test_record_span_is_one_shot(self):
        tr = Tracer()
        span = tr.record_span("tx", 2.0, 4.0, kind="transfer", src=1)
        assert (span.start, span.end) == (2.0, 4.0)
        assert span.kind == "transfer"
        assert span.attrs == {"src": 1}
        assert tr.roots == [span]

    def test_set_attrs_merges(self):
        tr = Tracer()
        span = tr.start_span("x", t=0.0, a=1)
        tr.set_attrs(span, b=2)
        assert span.attrs == {"a": 1, "b": 2}

    def test_depth_first_iteration(self):
        tr = Tracer()
        a = tr.start_span("a", t=0.0)
        a1 = tr.start_span("a1", parent=a, t=0.0)
        tr.start_span("a1x", parent=a1, t=0.0)
        tr.start_span("a2", parent=a, t=0.0)
        tr.start_span("b", t=0.0)
        assert [s.name for s in tr.spans()] == ["a", "a1", "a1x", "a2", "b"]

    def test_find_by_kind_and_name(self):
        tr = Tracer()
        tr.start_span("repair s1", kind="repair", t=0.0)
        tr.start_span("attempt 1", kind="attempt", t=0.0)
        tr.start_span("attempt 2", kind="attempt", t=0.0)
        assert len(tr.find(kind="attempt")) == 2
        assert [s.name for s in tr.find(name="attempt 1")] == ["attempt 1"]
        assert tr.find(kind="pipeline") == []

    def test_clear(self):
        tr = Tracer()
        tr.start_span("x", t=0.0)
        tr.event(None, "e", t=0.0)
        tr.clear()
        assert tr.roots == [] and tr.events == []


class TestEvents:
    def test_event_on_span_vs_root(self):
        tr = Tracer()
        span = tr.start_span("x", t=0.0)
        on_span = tr.event(span, "watchdog.fire", t=1.0, attempt=1)
        on_root = tr.event(None, "node.crash", t=0.5, node=3)
        assert span.events == [on_span]
        assert tr.events == [on_root]
        assert on_span.attrs == {"attempt": 1}

    def test_all_events_time_sorted(self):
        tr = Tracer()
        span = tr.start_span("x", t=0.0)
        tr.event(span, "late", t=2.0)
        tr.event(None, "early", t=0.5)
        tr.event(span, "mid", t=1.0)
        assert tr.event_names() == ["early", "mid", "late"]

    def test_clock_supplies_default_timestamps(self):
        times = iter([1.25, 2.5])
        tr = Tracer(clock=lambda: next(times))
        span = tr.start_span("x")
        ev = tr.event(span, "e")
        assert span.start == 1.25
        assert ev.time == 2.5

    def test_no_clock_defaults_to_zero(self):
        tr = Tracer()
        assert tr.start_span("x").start == 0.0


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_null_span_is_falsy_and_shared(self):
        nt = NullTracer()
        span = nt.start_span("x", kind="repair", t=1.0, a=1)
        assert span is NULL_SPAN
        assert not span
        assert nt.record_span("y", 0.0, 1.0) is NULL_SPAN
        assert nt.end_span(span, t=5.0) is NULL_SPAN

    def test_swallows_everything(self):
        nt = NullTracer()
        s = nt.start_span("x")
        nt.event(s, "e", t=1.0)
        nt.event(None, "e2", t=1.0)
        nt.set_attrs(s, a=1)
        assert nt.roots == [] and nt.events == []
        assert list(nt.spans()) == []
        assert nt.all_events() == []
        assert NULL_SPAN.attrs == {}

    def test_real_tracer_tolerates_null_span(self):
        # instrumented code ends/annotates whatever it kept a handle on,
        # which may be NULL_SPAN from an earlier no-op phase
        tr = Tracer()
        assert tr.end_span(NULL_SPAN, t=1.0) is NULL_SPAN
        tr.set_attrs(NULL_SPAN, a=1)
        tr.event(NULL_SPAN, "e", t=0.0)  # falsy span -> root event
        assert NULL_SPAN.attrs == {} and NULL_SPAN.end == 0.0
        assert [e.name for e in tr.events] == ["e"]
