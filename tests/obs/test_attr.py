"""Bottleneck attribution: the exact-sum invariant across fault scenarios.

The load-bearing property of :mod:`repro.obs.attr` is that the four
buckets always partition the measured throughput gap — whatever the
fault matrix did to the repair.  Each scenario below runs one traced
repair (clean, helper straggler, requester stall, hub crash) and checks
the invariant plus the scenario-specific blame.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.obs import (
    BUCKETS,
    CONSTRAINTS,
    ExecModel,
    MetricsRegistry,
    Tracer,
    attribute_repair,
    attribute_repairs,
)
from repro.workloads import make_trace


def _traced_repair(*, cap=None, stall=None, chunk_bytes=32 * 1024, seed=11):
    """One traced (9, 6) repair of node 2, with an optional fault knob."""
    n, k, num_nodes = 9, 6, 12
    tracer = Tracer()
    system = ClusterSystem(
        num_nodes, RSCode(n, k), slice_bytes=4096,
        tracer=tracer, metrics=MetricsRegistry(),
    )
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (k, chunk_bytes), dtype=np.uint8)
    system.write_stripe("s1", data, placement=tuple(range(n)))
    snap = make_trace(
        "tpcds", num_nodes=num_nodes, num_snapshots=10, seed=4
    ).snapshot(5)
    system.set_bandwidth(snap)
    system.fail_node(2)
    if cap is not None:
        # applied AFTER the bandwidth reports: the planner still believes
        # the uncapped rate, so the cap shows up as a straggler
        system.set_rate_cap(*cap)
    if stall is not None:
        system.stall_node(*stall)
    outcome = system.repair(
        "s1", 2, requester=num_nodes - 1, store=False, on_failure="outcome"
    )
    return system, tracer, outcome


def _check_invariants(attr):
    """Shares must sum to the measured gap — exactly, not just ±1%."""
    d = attr.buckets.as_dict()
    assert set(d) == set(BUCKETS)
    assert all(v >= 0 for v in d.values())
    gap = max(attr.elapsed_s - attr.ideal_s, 0.0)
    assert attr.gap_s == pytest.approx(gap, rel=1e-9, abs=1e-12)
    assert sum(d.values()) == pytest.approx(attr.gap_s, rel=1e-9, abs=1e-12)
    shares = attr.bucket_shares_mbps()
    assert sum(shares.values()) == pytest.approx(
        attr.gap_mbps, rel=1e-9, abs=1e-9
    )
    if attr.gap_mbps > 0:  # the ISSUE acceptance bound (±1%), and then some
        assert abs(sum(shares.values()) - attr.gap_mbps) <= 0.01 * attr.gap_mbps
    rows = attr.node_shares_s()
    assert sum(r[-1] for r in rows) == pytest.approx(
        attr.gap_s, rel=1e-9, abs=1e-12
    )
    for bucket, label, constraint, seconds in rows:
        assert bucket in BUCKETS
        assert constraint in CONSTRAINTS
        assert seconds > 0
        assert label


class TestCleanRepair:
    def test_no_fault_blame_and_invariant(self):
        system, tracer, outcome = _traced_repair()
        attr = attribute_repair(
            tracer, exec_model=ExecModel.from_system(system)
        )
        assert outcome.verified
        _check_invariants(attr)
        assert attr.attempts == 1
        assert attr.buckets.fault_recovery_s == 0.0
        assert attr.fault_nodes == ()
        assert attr.t_ref_mbps > 0
        assert 0 < attr.achieved_mbps <= attr.t_ref_mbps + 1e-9

    def test_node_idle_covers_roles(self):
        system, tracer, _ = _traced_repair()
        attr = attribute_repair(
            tracer, exec_model=ExecModel.from_system(system)
        )
        roles = {ni.role for ni in attr.node_idle}
        assert "requester" in roles
        assert "helper" in roles or "relay" in roles
        for ni in attr.node_idle:
            assert 0.0 <= ni.busy_s <= ni.window_s + 1e-12
            assert ni.constraint in CONSTRAINTS


class TestHelperStraggler:
    def test_capped_helper_is_blamed(self):
        system, tracer, outcome = _traced_repair(cap=(4, 2.0))
        attr = attribute_repair(
            tracer, exec_model=ExecModel.from_system(system)
        )
        _check_invariants(attr)
        clean = _traced_repair()[1]
        clean_attr = attribute_repair(clean)
        assert attr.elapsed_s > 2 * clean_attr.elapsed_s
        assert attr.buckets.straggler_s > 0
        assert 4 in attr.straggler_nodes
        straggler_rows = [
            r for r in attr.node_shares_s() if r[0] == "straggler"
        ]
        assert any(r[1] == "node 4" for r in straggler_rows)


class TestRequesterStall:
    def test_stall_widens_gap_but_invariant_holds(self):
        system, tracer, _ = _traced_repair(stall=(11, 0.005))
        attr = attribute_repair(
            tracer, exec_model=ExecModel.from_system(system)
        )
        _check_invariants(attr)
        clean_attr = attribute_repair(_traced_repair()[1])
        assert attr.gap_s > clean_attr.gap_s
        assert attr.gap_s >= 0.004  # most of the 5 ms stall is gap


class TestHubCrash:
    def test_fault_recovery_dominates(self, hub_crash_demo):
        demo = hub_crash_demo
        attr = attribute_repair(
            demo.tracer, exec_model=ExecModel.from_system(demo.system)
        )
        _check_invariants(attr)
        assert attr.attempts >= 2
        assert attr.buckets.fault_recovery_s > 0
        assert demo.hub in attr.fault_nodes
        fault_rows = [
            r for r in attr.node_shares_s() if r[0] == "fault_recovery"
        ]
        assert any(r[1] == f"node {demo.hub}" for r in fault_rows)
        # the crash-and-replan arc is the dominant loss
        assert attr.buckets.fault_recovery_s >= 0.5 * attr.gap_s

    def test_attribute_repairs_finds_every_repair(self, hub_crash_demo):
        attrs = attribute_repairs(hub_crash_demo.tracer)
        assert len(attrs) == 1
        assert attrs[0].repair.startswith("repair")


class TestErrors:
    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            attribute_repair(Tracer())
