"""Streaming divergence detectors: numerics, routing, control wiring.

The numerics classes pin down the contract stated in
``repro.obs.detect``'s module docstring: constant streams are silent,
detection delay is bounded, alarms are scale-invariant and independent
of how samples are chunked.  The monitor classes cover signal routing,
the structured ``detect.*`` events / ``repro_detect_*`` metrics, and
the SLO engine's ``alarms`` / ``alarm_rate`` aggregates.
"""

import math

import pytest

from repro.obs import (
    Alarm,
    Baseline,
    CUSUMDetector,
    DivergenceMonitor,
    EWMADetector,
    MetricsRegistry,
    PageHinkleyDetector,
    Tracer,
)
from repro.obs.detect import (
    SIGNALS,
    plan_divergence_detector,
    queue_growth_detector,
    regression_detector,
    straggler_detector,
)

pytestmark = pytest.mark.detect

ALL_DETECTORS = [
    lambda: EWMADetector(z_threshold=6.0, min_samples=3),
    lambda: CUSUMDetector(k=0.5, h=5.0, min_samples=3),
    # delta=0.5 mirrors CUSUM's k: it absorbs the residual drift while
    # the EW baseline converges on the stream's level
    lambda: PageHinkleyDetector(delta=0.5, lambda_=5.0, min_samples=3),
]


def feed(detector, samples):
    return [a for a in (detector.observe(t, v) for t, v in samples) if a]


def stream(values, dt=1.0, t0=0.0):
    return [(t0 + i * dt, v) for i, v in enumerate(values)]


class TestBaseline:
    def test_tracks_mean_of_constant_stream(self):
        b = Baseline(tau_s=10.0)
        for t in range(20):
            b.update(float(t), 42.0)
        assert b.mean == pytest.approx(42.0)
        assert b.std == 0.0

    def test_time_aware_decay(self):
        """A sample after a long gap dominates; after a tiny gap it
        barely moves the mean — alpha = 1 - exp(-dt/tau)."""
        slow, fast = Baseline(tau_s=10.0), Baseline(tau_s=10.0)
        slow.update(0.0, 0.0)
        fast.update(0.0, 0.0)
        slow.update(0.001, 100.0)   # dt << tau
        fast.update(100.0, 100.0)   # dt >> tau
        assert slow.mean < 1.0
        assert fast.mean > 99.0

    def test_zscore_uses_relative_floor(self):
        b = Baseline(tau_s=10.0)
        for t in range(10):
            b.update(float(t), 100.0)
        # std is 0; the 5% relative floor keeps z finite and scaled
        assert b.zscore(95.0) == pytest.approx(-1.0)

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            Baseline(tau_s=0.0)


class TestNumerics:
    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_constant_stream_never_alarms(self, factory):
        det = factory()
        alarms = feed(det, stream([7.5] * 500))
        assert alarms == []

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_constant_zero_stream_never_alarms(self, factory):
        det = factory()
        assert feed(det, stream([0.0] * 200)) == []

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_collapse_detected_within_bounded_delay(self, factory):
        """A collapse to zero after a noisy-but-steady run is caught
        within a dozen post-change samples."""
        det = factory()
        healthy = [100.0 + (-1.0) ** i * 2.0 for i in range(50)]
        alarms = feed(det, stream(healthy + [0.0] * 20))
        assert alarms, "collapse never detected"
        first = alarms[0]
        assert first.t >= 50.0  # no false alarm during the healthy run
        assert first.t <= 62.0  # bounded delay: <= 12 samples after
        assert first.kind == "down"

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    @pytest.mark.parametrize("scale", [1e-6, 1.0, 1e6])
    def test_scale_invariance(self, factory, scale):
        """Scaling the whole stream by c > 0 changes no alarm time."""
        values = [100.0 + (-1.0) ** i * 3.0 for i in range(40)] + [10.0] * 20
        base = feed(factory(), stream(values))
        scaled = feed(factory(), stream([v * scale for v in values]))
        assert [a.t for a in scaled] == [a.t for a in base]
        assert [a.kind for a in scaled] == [a.kind for a in base]

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_chunked_feeding_is_deterministic(self, factory):
        """observe_many in arbitrary chunks == one observe per sample."""
        values = [50.0, 51.0, 49.0, 50.5] * 15 + [5.0] * 10 + [5.2] * 30
        samples = stream(values)
        per_sample = feed(factory(), samples)
        det = factory()
        chunked = []
        i = 0
        for size in (1, 7, 3, 19, 100):
            chunked.extend(det.observe_many(samples[i:i + size]))
            i += size
        chunked.extend(det.observe_many(samples[i:]))
        assert [(a.t, a.stat) for a in chunked] == [
            (a.t, a.stat) for a in per_sample
        ]

    def test_cusum_delay_matches_theory(self):
        """A sustained shift of s deviations fires in ~h/(s-k) samples."""
        det = CUSUMDetector(k=0.5, h=5.0, direction="down", min_samples=4,
                            rel_floor=0.05)
        healthy = stream([100.0] * 30)
        assert feed(det, healthy) == []
        # shift to 80: z = (80-100)/max(std, 5) = -4, so each sample
        # adds 3.5 to g- and the alarm lands on the 2nd changed sample
        alarms = feed(det, stream([80.0] * 10, t0=30.0))
        assert len(alarms) >= 1
        assert alarms[0].t == 31.0

    def test_one_alarm_per_regime_shift(self):
        """After an alarm the detector resets and re-learns — a step
        change yields one alarm, not one per post-change sample."""
        det = CUSUMDetector(k=0.5, h=4.0, min_samples=3)
        alarms = feed(det, stream([100.0] * 30 + [10.0] * 100))
        assert len(alarms) == 1

    def test_irregular_sampling_handled(self):
        """Irregularly spaced timestamps still detect the collapse."""
        det = plan_divergence_detector()
        ts = [0.0]
        for i in range(60):
            ts.append(ts[-1] + (0.1 if i % 3 else 2.7))
        values = [1.0] * 40 + [0.01] * 21
        alarms = feed(det, list(zip(ts, values)))
        assert len(alarms) == 1
        assert alarms[0].t >= ts[40]

    def test_direction_gating(self):
        """A "down" detector ignores upward surges and vice versa."""
        surge = [10.0] * 30 + [1000.0] * 20
        down = CUSUMDetector(k=0.5, h=4.0, direction="down", min_samples=3)
        up = CUSUMDetector(k=0.5, h=4.0, direction="up", min_samples=3)
        assert feed(down, stream(surge)) == []
        up_alarms = feed(up, stream(surge))
        assert up_alarms and up_alarms[0].kind == "up"

    def test_ref_mode_keeps_alarming_on_chronic_divergence(self):
        """Fixed-reference scoring never re-learns a bad level as the
        new normal: a stream stuck at half the reference alarms again
        after each reset."""
        det = plan_divergence_detector(ref=1.0)
        alarms = feed(det, stream([0.5] * 100))
        assert len(alarms) >= 2

    def test_ref_mode_has_no_warmup(self):
        det = CUSUMDetector(k=0.5, h=1.0, ref=1.0, direction="down")
        alarms = feed(det, stream([0.0, 0.0]))
        assert alarms  # fired inside what would have been the warmup

    def test_alarm_record_fields(self):
        det = EWMADetector(z_threshold=3.0, min_samples=2)
        alarms = feed(det, stream([10.0] * 10 + [0.0]))
        (a,) = alarms
        assert isinstance(a, Alarm)
        assert a.detector == "ewma"
        assert a.kind == "down"
        assert a.value == 0.0
        assert a.stat > a.threshold == 3.0
        assert a.signal == "" and a.key == ""
        assert math.isfinite(a.stat)

    @pytest.mark.parametrize("bad", [
        dict(direction="sideways"),
        dict(min_samples=0),
        dict(tau_s=-1.0),
    ])
    def test_invalid_params_rejected(self, bad):
        with pytest.raises(ValueError):
            EWMADetector(**bad)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            EWMADetector(z_threshold=0.0)
        with pytest.raises(ValueError):
            CUSUMDetector(k=-0.1)
        with pytest.raises(ValueError):
            PageHinkleyDetector(lambda_=0.0)


class TestFactories:
    def test_catalogue_factories_build_their_detectors(self):
        assert plan_divergence_detector().name == "cusum"
        assert straggler_detector().name == "ewma"
        assert queue_growth_detector().name == "page-hinkley"
        assert regression_detector().name == "cusum"

    def test_catalogue_overrides_win(self):
        det = plan_divergence_detector(h=9.0, tau_s=1.0)
        assert det.h == 9.0 and det.baseline.tau_s == 1.0

    def test_signals_map_is_consistent(self):
        for signal, (factory, doc) in SIGNALS.items():
            det = factory()
            assert det.observe(0.0, 1.0) is None  # warmup or ref, no crash
            assert doc


class TestDivergenceMonitor:
    def test_routes_per_key_and_rewrites_alarms(self):
        monitor = DivergenceMonitor()
        monitor.watch("sig", lambda: EWMADetector(z_threshold=3.0,
                                                  min_samples=2))
        for t in range(10):
            assert monitor.feed("sig", float(t), 10.0, key="a") is None
            assert monitor.feed("sig", float(t), 20.0, key="b") is None
        alarm = monitor.feed("sig", 10.0, 0.0, key="a")
        assert alarm is not None
        assert alarm.signal == "sig" and alarm.key == "a"
        assert monitor.alarms_for("sig", key="a") == [alarm]
        assert monitor.alarms_for("sig", key="b") == []
        assert monitor.observations("sig") == 21

    def test_unwatched_signal_is_a_noop(self):
        monitor = DivergenceMonitor()
        assert monitor.feed("nope", 0.0, 1.0) is None
        assert monitor.alarms == []

    def test_alarm_emits_event_metrics_and_callback(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        monitor = DivergenceMonitor(tracer=tracer, metrics=metrics)
        monitor.watch("sig", lambda: EWMADetector(z_threshold=3.0,
                                                  min_samples=2))
        seen = []
        monitor.on_alarm("sig", seen.append)
        for t in range(8):
            monitor.feed("sig", float(t), 5.0)
        monitor.feed("sig", 8.0, 0.0)
        assert len(seen) == 1 and seen[0].signal == "sig"
        events = [e for e in tracer.all_events() if e.name == "detect.alarm"]
        assert len(events) == 1
        assert events[0].attrs["signal"] == "sig"
        assert events[0].attrs["detector"] == "ewma"
        counter = metrics.counter(
            "repro_detect_alarms_total", "", signal="sig", detector="ewma"
        )
        assert counter.value == 1

    def test_on_alarm_requires_watched_signal(self):
        monitor = DivergenceMonitor()
        with pytest.raises(ValueError):
            monitor.on_alarm("ghost", lambda a: None)

    def test_suppressed_records_reason_and_event(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        monitor = DivergenceMonitor(
            tracer=tracer, metrics=metrics, clock=lambda: 3.5
        )
        monitor.suppressed(
            "repair.throughput_ratio",
            "timeout fallback owns attempt epoch",
            key="w1", attempt=2,
        )
        (record,) = monitor.suppressions
        assert record["reason"] == "timeout fallback owns attempt epoch"
        assert record["t"] == 3.5 and record["attempt"] == 2
        (event,) = [
            e for e in tracer.all_events() if e.name == "detect.suppressed"
        ]
        assert event.attrs["reason"] == record["reason"]
        assert event.attrs["key"] == "w1"
        counter = metrics.counter(
            "repro_detect_suppressed_total", "",
            signal="repair.throughput_ratio",
        )
        assert counter.value == 1

    def test_discard_resets_a_key(self):
        monitor = DivergenceMonitor()
        monitor.watch("sig", lambda: EWMADetector(z_threshold=3.0,
                                                  min_samples=5))
        for t in range(4):
            monitor.feed("sig", float(t), 10.0)
        monitor.discard("sig", "")
        # fresh baseline: the next feed is warmup sample 1, no alarm
        assert monitor.feed("sig", 4.0, 0.0) is None
        assert monitor.keys("sig") == [""]

    def test_alarm_count_since_window(self):
        monitor = DivergenceMonitor()
        monitor.watch("sig", lambda: EWMADetector(z_threshold=3.0,
                                                  min_samples=2))
        for t in range(6):
            monitor.feed("sig", float(t), 10.0)
        monitor.feed("sig", 6.0, 0.0)       # alarm at t=6, detector resets
        for t in range(7, 12):
            monitor.feed("sig", float(t), 10.0)
        monitor.feed("sig", 12.0, 0.0)      # alarm at t=12
        assert monitor.alarm_count() == 2
        assert monitor.alarm_count("sig", since=10.0) == 1
        assert monitor.alarm_count("other") == 0

    def test_standard_catalogue_and_clear(self):
        monitor = DivergenceMonitor.standard()
        assert monitor.watched() == sorted(SIGNALS)
        monitor.feed("node.busy_fraction", 0.0, 0.5, key="n1")
        monitor.clear()
        assert monitor.alarms == [] and monitor.observations(
            "node.busy_fraction"
        ) == 0


class TestSLOIntegration:
    def _engine(self, rules, monitor):
        from repro.obs.fleet import FleetAggregator
        from repro.obs.slo import SLOEngine, parse_rules

        return SLOEngine(
            FleetAggregator(window_s=10.0), parse_rules(rules),
            monitor=monitor,
        )

    def test_alarm_rules_require_monitor(self):
        from repro.obs.fleet import FleetAggregator
        from repro.obs.slo import SLOEngine, parse_rules

        with pytest.raises(ValueError, match="monitor"):
            SLOEngine(
                FleetAggregator(window_s=10.0),
                parse_rules(["alarms repair.throughput_ratio <= 0"]),
            )

    def test_alarms_aggregate_breaches_and_recovers(self):
        monitor = DivergenceMonitor()
        monitor.watch(
            "sig", lambda: EWMADetector(z_threshold=3.0, min_samples=2)
        )
        engine = self._engine(["alarms sig <= 0"], monitor)
        (status,) = engine.evaluate(now=0.0)
        assert status.ok and status.value == 0.0  # empty => determinate 0
        for t in range(8):
            monitor.feed("sig", float(t), 5.0)
        monitor.feed("sig", 8.0, 0.0)
        (status,) = engine.evaluate(now=9.0)
        assert not status.ok and status.value == 1.0
        assert engine.breaches == 1
        # the alarm ages out of the 10 s window
        (status,) = engine.evaluate(now=30.0)
        assert status.ok
        assert engine.recoveries == 1

    def test_alarm_rate_aggregate(self):
        monitor = DivergenceMonitor()
        monitor.watch(
            "sig", lambda: EWMADetector(z_threshold=3.0, min_samples=2)
        )
        for t in range(8):
            monitor.feed("sig", float(t), 5.0)
        monitor.feed("sig", 8.0, 0.0)
        engine = self._engine(["alarm_rate sig < 0.05"], monitor)
        (status,) = engine.evaluate(now=9.0)
        assert status.value == pytest.approx(0.1)  # 1 alarm / 10 s window
        assert not status.ok
