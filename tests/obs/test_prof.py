"""Engine self-observability: profiler, run monitor, and their exporters.

Unit-level coverage for :mod:`repro.obs.prof` — site attribution across
callable shapes, histogram/reservoir bookkeeping, queue integration,
heartbeat emission with a fake clock — plus the empty-input contract
for every exporter (fresh tracer/registry, unused profiler).
"""

import functools
import io
import json

import pytest

from repro.obs import (
    EngineProfiler,
    MetricsRegistry,
    RunMonitor,
    SiteStats,
    Tracer,
    chrome_trace,
    chrome_trace_json,
    collapsed_stacks,
    exponential_buckets,
    prometheus_text,
    site_of,
    spans_to_jsonl,
    speedscope_json,
    speedscope_json_str,
)
from repro.sim.events import EventQueue


def _noop() -> None:
    pass


class _Worker:
    def __init__(self) -> None:
        self.calls = 0

    def pump(self) -> None:
        self.calls += 1


class _CallableObject:
    def __call__(self) -> None:
        pass


# --------------------------------------------------------------------- #
# Site attribution                                                      #
# --------------------------------------------------------------------- #

class TestSiteOf:
    def test_plain_function(self):
        module, qualname = site_of(_noop)
        assert module == __name__
        assert qualname == "_noop"

    def test_bound_methods_share_one_site(self):
        a, b = _Worker(), _Worker()
        assert site_of(a.pump) == site_of(b.pump)
        assert site_of(a.pump)[1] == "_Worker.pump"

    def test_partial_unwraps_to_inner_function(self):
        bound = functools.partial(max, 1, 2)
        module, qualname = site_of(bound)
        assert qualname == "max"
        nested = functools.partial(functools.partial(_noop))
        assert site_of(nested) == (__name__, "_noop")

    def test_wrapped_decorator_unwraps(self):
        @functools.wraps(_noop)
        def wrapper():
            _noop()

        assert site_of(wrapper) == (__name__, "_noop")

    def test_callable_object_attributes_to_class(self):
        module, qualname = site_of(_CallableObject())
        assert module == __name__
        assert qualname == "_CallableObject"

    def test_lambda(self):
        module, qualname = site_of(lambda: None)
        assert "<lambda>" in qualname


class TestSiteStats:
    def test_to_dict_units(self):
        s = SiteStats("m", "q")
        s.events = 4
        s.self_ns = 8_000_000  # 8 ms
        s.max_ns = 3_000_000
        s.alloc_bytes = 2048
        d = s.to_dict()
        assert d["site"] == "m:q"
        assert d["self_ms"] == pytest.approx(8.0)
        assert d["mean_us"] == pytest.approx(2000.0)
        assert d["max_us"] == pytest.approx(3000.0)
        assert d["alloc_kib"] == pytest.approx(2.0)

    def test_empty_mean_is_zero(self):
        assert SiteStats("m", "q").mean_us == 0.0


# --------------------------------------------------------------------- #
# EngineProfiler                                                        #
# --------------------------------------------------------------------- #

class TestEngineProfiler:
    def test_attributes_across_instances(self):
        prof = EngineProfiler()
        workers = [_Worker() for _ in range(3)]
        for w in workers:
            prof.run_action(w.pump)
            prof.run_action(w.pump)
        assert all(w.calls == 2 for w in workers)
        assert prof.events == 6
        sites = list(prof.sites.values())
        assert len(sites) == 1
        assert sites[0].events == 6
        assert sites[0].qualname == "_Worker.pump"
        assert sites[0].self_ns > 0
        assert prof.total_self_ns == sites[0].self_ns

    def test_distinct_builtin_callables_stay_distinct(self):
        prof = EngineProfiler()
        prof.run_action(functools.partial(max, 1, 2))
        prof.run_action(functools.partial(min, 1, 2))
        qualnames = {s.qualname for s in prof.sites.values()}
        assert {"max", "min"} <= qualnames

    def test_hot_sites_sorted_by_self_time(self):
        prof = EngineProfiler()
        fast = SiteStats("m", "fast")
        slow = SiteStats("m", "slow")
        fast.self_ns, slow.self_ns = 10, 1000
        prof.sites = {("m", "fast"): fast, ("m", "slow"): slow}
        assert [s.qualname for s in prof.hot_sites(2)] == ["slow", "fast"]

    def test_batch_histogram_buckets(self):
        prof = EngineProfiler()
        prof.record_batch(0.0, 1, 0)
        prof.record_batch(0.0, 3, 0)
        prof.record_batch(0.0, 7, 0)
        prof.record_batch(0.0, 4, 0)
        snap = prof.snapshot()
        assert snap["batch_size_hist"] == {"1": 1, "2-3": 1, "4-7": 2}

    def test_batch_reservoir_decimates(self):
        prof = EngineProfiler(max_batch_samples=16)
        for i in range(200):
            prof.record_batch(float(i), 1, i)
        assert prof.batches == 200
        assert len(prof.batch_samples) < 16
        assert prof._sample_stride > 1
        # survivors keep their original (time, ran, pending) shape
        t, ran, pending = prof.batch_samples[0]
        assert ran == 1 and pending == int(t)

    def test_fanout_histogram(self):
        prof = EngineProfiler()
        prof.record_fanout("failure_listeners", 2)
        prof.record_fanout("failure_listeners", 2)
        prof.record_fanout("failure_listeners", 5)
        assert prof.fanout["failure_listeners"] == {2: 2, 5: 1}
        assert prof.snapshot()["fanout"]["failure_listeners"] == {
            "2": 2, "5": 1,
        }

    def test_track_alloc_attributes_bytes(self):
        sink = []

        def allocate():
            sink.append(bytearray(64 * 1024))

        with EngineProfiler(track_alloc=True) as prof:
            prof.install(EventQueue())
            prof.run_action(allocate)
        (stats,) = prof.sites.values()
        assert stats.alloc_bytes >= 64 * 1024

    def test_install_uninstall_roundtrip(self):
        q = EventQueue()
        prof = EngineProfiler().install(q)
        assert q.profiler is prof
        prof.uninstall()
        assert q.profiler is None
        # uninstalling twice (or after replacement) is harmless
        other = EngineProfiler().install(q)
        prof.uninstall()
        assert q.profiler is other

    def test_queue_run_attributes_events(self):
        q = EventQueue()
        w = _Worker()
        for i in range(10):
            q.schedule(i * 0.5, w.pump)
        prof = EngineProfiler().install(q)
        q.run()
        prof.uninstall()
        assert w.calls == 10
        assert prof.events == 10
        assert prof.run_wall_ns > 0
        assert prof.run_wall_ns >= prof.total_self_ns
        snap = prof.snapshot()
        assert snap["hot_sites"][0]["site"].endswith("_Worker.pump")

    def test_queue_step_also_profiled(self):
        q = EventQueue()
        q.schedule(0.0, _noop)
        EngineProfiler().install(q)
        assert q.step() is True
        assert q.profiler.events == 1
        assert q.profiler.batches == 1

    def test_same_timestamp_batch_recorded_once(self):
        q = EventQueue()
        for _ in range(8):
            q.schedule(1.0, _noop)
        prof = EngineProfiler().install(q)
        q.run()
        assert prof.events == 8
        assert prof.batches == 1
        assert prof.mean_batch_size == pytest.approx(8.0)


# --------------------------------------------------------------------- #
# RunMonitor                                                            #
# --------------------------------------------------------------------- #

class _FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestRunMonitor:
    def _queue_with_events(self, n=100, spacing=0.01):
        q = EventQueue()
        for i in range(n):
            q.schedule(i * spacing, _noop)
        return q

    def test_heartbeats_emitted_and_final(self):
        clock = _FakeClock()
        q = self._queue_with_events(100)
        stream = io.StringIO()
        mon = RunMonitor(
            interval_s=1.0, stream=stream, check_every=10, clock=clock
        ).install(q)

        # advance the fake wall clock as events execute
        orig_after = mon.after_batch

        def ticking_after_batch(queue):
            clock.t += 0.05
            orig_after(queue)

        mon.after_batch = ticking_after_batch
        q.monitor = mon
        q.run()
        mon.uninstall()

        beats = mon.heartbeats
        assert len(beats) >= 2
        assert beats[-1]["final"] is True
        assert all(b["final"] is False for b in beats[:-1])
        assert beats[-1]["events"] == 100
        assert beats[-1]["events_per_s"] > 0
        # the stream saw exactly the same lines heartbeats_jsonl renders
        assert stream.getvalue() == mon.heartbeats_jsonl()
        for line in stream.getvalue().splitlines():
            json.loads(line)

    def test_cum_rate_ignores_preattach_events(self):
        clock = _FakeClock()
        q = self._queue_with_events(10)
        q.run()  # 10 events before the monitor exists
        for i in range(5):
            q.schedule(0.1 * (i + 1), _noop)
        mon = RunMonitor(interval_s=0.0, check_every=1, clock=clock).install(q)
        clock.t = 1.0
        q.run()
        mon.uninstall()
        final = mon.heartbeats[-1]
        assert final["events"] == 15  # queue-lifetime counter
        # but the cumulative rate only counts post-attach events
        assert final["cum_events_per_s"] <= 5 / 1e-9

    def test_eta_from_until(self):
        clock = _FakeClock()
        q = self._queue_with_events(100, spacing=0.01)
        mon = RunMonitor(
            interval_s=0.5, until=2.0, check_every=10, clock=clock
        ).install(q)
        orig_after = mon.after_batch

        def ticking(queue):
            clock.t += 0.1
            orig_after(queue)

        mon.after_batch = ticking
        q.monitor = mon
        q.run(until=2.0)
        mon.uninstall()
        mids = [b for b in mon.heartbeats if not b["final"]]
        assert mids, "expected at least one periodic heartbeat"
        assert any(
            b["eta_s"] is not None and b["eta_s"] >= 0.0 for b in mids
        )

    def test_eta_from_expected_events(self):
        clock = _FakeClock()
        q = self._queue_with_events(50)
        mon = RunMonitor(
            interval_s=0.1, expected_events=200, check_every=5, clock=clock
        ).install(q)
        orig_after = mon.after_batch

        def ticking(queue):
            clock.t += 0.05
            orig_after(queue)

        mon.after_batch = ticking
        q.monitor = mon
        q.run()
        mon.uninstall()
        mids = [b for b in mon.heartbeats if not b["final"]]
        assert any(b["eta_s"] is not None and b["eta_s"] > 0 for b in mids)

    def test_no_events_no_heartbeats(self):
        q = EventQueue()
        mon = RunMonitor(clock=_FakeClock()).install(q)
        q.run()
        mon.uninstall()
        assert mon.heartbeats == []
        assert mon.heartbeats_jsonl() == ""

    def test_hot_sites_in_heartbeat_with_profiler(self):
        clock = _FakeClock()
        q = self._queue_with_events(20)
        prof = EngineProfiler().install(q)
        mon = RunMonitor(
            interval_s=0.0, profiler=prof, check_every=1, clock=clock
        ).install(q)
        clock.t = 0.5
        q.run()
        mon.uninstall()
        prof.uninstall()
        hot = mon.heartbeats[-1]["hot"]
        assert hot and hot[0]["site"].endswith("_noop")


# --------------------------------------------------------------------- #
# Profiler exporters                                                    #
# --------------------------------------------------------------------- #

class TestProfilerExporters:
    def _profiled_queue(self):
        q = EventQueue()
        w = _Worker()
        for i in range(12):
            q.schedule(i * 0.1, w.pump)
            q.schedule(i * 0.1, _noop)
        prof = EngineProfiler().install(q)
        q.run()
        prof.uninstall()
        return prof

    def test_collapsed_stacks_format(self):
        prof = self._profiled_queue()
        lines = collapsed_stacks(prof).splitlines()
        assert len(lines) == 2  # two sites
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            assert ";" in frames
            assert int(weight) >= 1

    def test_speedscope_document(self):
        prof = self._profiled_queue()
        doc = speedscope_json(prof)
        assert doc == json.loads(speedscope_json_str(prof))
        frames = doc["shared"]["frames"]
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "nanoseconds"
        assert len(profile["samples"]) == len(profile["weights"]) == len(frames)
        # every sample indexes a real frame
        for sample in profile["samples"]:
            (idx,) = sample
            assert 0 <= idx < len(frames)
        assert any("pump" in f["name"] for f in frames)

    def test_chrome_trace_engine_counters(self):
        q = EventQueue()
        clock = _FakeClock()
        for i in range(30):
            q.schedule(i * 0.1, _noop)
        prof = EngineProfiler().install(q)
        mon = RunMonitor(interval_s=0.0, check_every=1, clock=clock).install(q)
        clock.t = 1.0
        q.run()
        mon.uninstall()
        prof.uninstall()
        doc = chrome_trace(Tracer(), profiler=prof, monitor=mon)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert {"engine pending", "engine batch", "engine events/sec"} <= names
        pending = [e for e in counters if e["name"] == "engine pending"]
        assert pending == sorted(pending, key=lambda e: e["ts"])
        # the engine process is labelled
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["args"]["name"] == "event engine" for e in metas
        )


# --------------------------------------------------------------------- #
# Empty inputs: every exporter stays well-formed with nothing to show   #
# --------------------------------------------------------------------- #

class TestEmptyInputs:
    def test_spans_to_jsonl_fresh_tracer(self):
        assert spans_to_jsonl(Tracer()) == ""

    def test_chrome_trace_fresh_tracer(self):
        doc = json.loads(chrome_trace_json(Tracer()))
        events = doc["traceEvents"]
        # nothing but (possibly) metadata records; all parseable
        assert all(e["ph"] == "M" for e in events)

    def test_prometheus_text_fresh_registry(self):
        text = prometheus_text(MetricsRegistry())
        assert text == "" or text.endswith("\n")
        for line in text.splitlines():
            assert line.startswith("#") or " " in line

    def test_collapsed_stacks_unused_profiler(self):
        assert collapsed_stacks(EngineProfiler()) == ""

    def test_speedscope_unused_profiler(self):
        doc = speedscope_json(EngineProfiler())
        json.dumps(doc)  # serialisable
        assert doc["shared"]["frames"] == []
        assert doc["profiles"][0]["samples"] == []
        assert doc["profiles"][0]["weights"] == []

    def test_chrome_trace_unused_profiler_and_monitor(self):
        doc = chrome_trace(
            Tracer(), profiler=EngineProfiler(), monitor=RunMonitor()
        )
        assert not [e for e in doc["traceEvents"] if e["ph"] == "C"]

    def test_snapshot_unused_profiler(self):
        snap = EngineProfiler().snapshot()
        assert snap["events"] == 0
        assert snap["hot_sites"] == []
        json.dumps(snap)


# --------------------------------------------------------------------- #
# exponential_buckets helper                                            #
# --------------------------------------------------------------------- #

class TestExponentialBuckets:
    def test_geometric_series(self):
        buckets = exponential_buckets(0.001, 2.0, 5)
        assert buckets == pytest.approx((0.001, 0.002, 0.004, 0.008, 0.016))

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 5)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 5)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)

    def test_usable_as_histogram_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram(
            "t", "test", buckets=exponential_buckets(0.01, 4.0, 4)
        )
        hist.observe(0.05)
        assert "t" in prometheus_text(reg)
