"""SLO engine: rule parsing, breach/recover transitions, burn rate."""

from __future__ import annotations

import pytest

from repro.obs import (
    FleetAggregator,
    MetricsRegistry,
    SLOEngine,
    SLORule,
    Tracer,
    parse_rule,
    parse_rules,
)

pytestmark = pytest.mark.slo


class TestParser:
    def test_quantile_rule(self):
        r = parse_rule("p99 repro_repair_seconds < 0.5")
        assert r == SLORule(
            name="repro_repair_seconds", agg="p99",
            metric="repro_repair_seconds", op="<", threshold=0.5,
        )
        assert r.text == "p99 repro_repair_seconds < 0.5"

    def test_every_aggregate_parses(self):
        for agg in ("p50", "p90", "p95", "p99", "mean", "min", "max",
                    "count", "rate"):
            assert parse_rule(f"{agg} repro_x >= 1").agg == agg

    def test_burn_rate_budget(self):
        r = parse_rule("burn_rate(0.01) repro_failed > 14.4")
        assert r.agg == "burn_rate"
        assert r.budget == 0.01
        assert r.threshold == 14.4
        assert r.text == "burn_rate(0.01) repro_failed > 14.4"

    def test_whitespace_and_scientific_notation(self):
        r = parse_rule("  mean   repro_x<=1e-3  ")
        assert (r.agg, r.op, r.threshold) == ("mean", "<=", 1e-3)

    @pytest.mark.parametrize("bad", [
        "p99 repro_x",                  # no comparison
        "p42 repro_x < 1",              # unknown aggregate
        "p99 9bad < 1",                 # invalid metric name
        "p99 repro_x ! 1",              # invalid operator
        "burn_rate(0) repro_x < 1",     # budget out of range
        "burn_rate(1.5) repro_x < 1",   # budget out of range
        "",                             # empty
    ])
    def test_rejects_bad_rules(self, bad):
        with pytest.raises(ValueError):
            parse_rule(bad)

    def test_parse_rules_skips_comments_and_disambiguates(self):
        rules = parse_rules([
            "# latency",
            "p99 repro_x < 1",
            "",
            "mean repro_x >= 0.5",
        ])
        assert [r.name for r in rules] == ["repro_x", "repro_x#2"]


def _engine(rules, *, window_s=10.0, tracer=None, metrics=None):
    fleet = FleetAggregator(window_s=window_s, buckets=10)
    engine = SLOEngine(
        fleet, parse_rules(rules),
        tracer=tracer or Tracer(), metrics=metrics or MetricsRegistry(),
    )
    return fleet, engine


class TestTransitions:
    def test_initial_breach_emits_event_and_counter(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        fleet, engine = _engine(
            ["p99 repro_x < 1.0"], tracer=tracer, metrics=metrics
        )
        fleet.observe("repro_x", 5.0, t=0.0)
        statuses = engine.evaluate(now=0.0)
        assert [s.ok for s in statuses] == [False]
        assert statuses[0].changed is True
        assert engine.breaches == 1
        events = [e for e in tracer.events if e.name == "slo.breach"]
        assert len(events) == 1
        assert events[0].attrs["rule"] == "repro_x"
        assert events[0].attrs["value"] == pytest.approx(5.0)
        assert metrics.get("repro_slo_breaches_total", rule="repro_x").value == 1
        assert metrics.get("repro_slo_ok", rule="repro_x").value == 0.0

    def test_breach_then_recover_cycle(self):
        tracer = Tracer()
        fleet, engine = _engine(["max repro_x <= 1.0"], tracer=tracer)
        fleet.observe("repro_x", 0.5, t=0.0)
        assert engine.evaluate(now=0.0)[0].ok is True
        assert engine.breaches == 0
        fleet.observe("repro_x", 9.0, t=1.0)
        assert engine.evaluate(now=1.0)[0].ok is False
        # the bad sample ages out of the 10 s window; a fresh good one lands
        fleet.observe("repro_x", 0.5, t=20.0)
        final = engine.evaluate(now=20.0)[0]
        assert final.ok is True and final.changed is True
        assert engine.breaches == 1
        assert engine.recoveries == 1
        names = [e.name for e in tracer.events if e.name.startswith("slo.")]
        assert names == ["slo.breach", "slo.recover"]

    def test_steady_state_emits_nothing(self):
        tracer = Tracer()
        fleet, engine = _engine(["mean repro_x < 1.0"], tracer=tracer)
        for i in range(5):
            fleet.observe("repro_x", 0.1, t=float(i))
            assert engine.evaluate(now=float(i))[0].changed is False
        assert engine.breaches == 0 and engine.recoveries == 0
        assert [e for e in tracer.events if e.name.startswith("slo.")] == []

    def test_indeterminate_window_holds_state(self):
        fleet, engine = _engine(["p99 repro_x < 1.0"], window_s=1.0)
        # never observed: indeterminate, reported ok, no breach
        s = engine.evaluate(now=0.0)[0]
        assert s.value is None and s.ok is True
        assert engine.status() == {"repro_x": None}
        # breach, then let the window empty out: state must hold
        fleet.observe("repro_x", 9.0, t=1.0)
        assert engine.evaluate(now=1.0)[0].ok is False
        held = engine.evaluate(now=50.0)[0]
        assert held.value is None
        assert held.ok is False and held.changed is False
        assert engine.status() == {"repro_x": False}
        assert engine.recoveries == 0

    def test_count_and_rate_are_determinate_at_zero(self):
        fleet, engine = _engine(["count repro_x >= 1"], window_s=1.0)
        s = engine.evaluate(now=0.0)[0]
        assert s.value == 0 and s.ok is False  # empty window is a real 0


class TestBurnRate:
    def test_failure_ratio_over_budget(self):
        fleet, engine = _engine(["burn_rate(0.1) repro_failed <= 1.0"])
        # 3 failures / 10 repairs = 0.3 ratio; / 0.1 budget = burn 3.0
        for i in range(10):
            fleet.observe("repro_failed", 1.0 if i < 3 else 0.0, t=0.0)
        s = engine.evaluate(now=0.0)[0]
        assert s.value == pytest.approx(3.0)
        assert s.ok is False

    def test_all_successes_burn_zero(self):
        fleet, engine = _engine(["burn_rate(0.1) repro_failed <= 1.0"])
        for _ in range(10):
            fleet.observe("repro_failed", 0.0, t=0.0)
        s = engine.evaluate(now=0.0)[0]
        assert s.value == 0.0 and s.ok is True


class TestEndToEnd:
    def test_fleet_sweep_breaches_and_recovers(self):
        from repro.obs.demo import fleet_sweep

        demo = fleet_sweep(repairs=30)
        assert all(o.verified for o in demo.outcomes)
        assert demo.slo.breaches > 0
        assert demo.slo.recoveries > 0
        names = [
            e.name for e in demo.tracer.events if e.name.startswith("slo.")
        ]
        assert "slo.breach" in names and "slo.recover" in names
        snap = demo.fleet.snapshot(demo.system.events.now)
        assert snap["repro_repair_seconds"]["count"] == 30
