"""Shared fixtures: the traced hub-crash demo repair, run once per session."""

import pytest

from repro.obs.demo import traced_hub_crash_repair


@pytest.fixture(scope="session")
def hub_crash_demo():
    """The canned (14,10) traced repair with an injected hub crash.

    Expensive (a clean run plus a traced run on the event queue), so it
    is shared by every exporter/accounting test in this package.
    """
    return traced_hub_crash_repair()
