"""Exporter round-trips over the traced hub-crash demo repair.

The session-scoped ``hub_crash_demo`` fixture runs the canned (14,10)
repair with its plan's hub crashed mid-flight, so every exporter here is
validated against a trace that exercises the whole self-healing arc:
crash -> watchdog fire -> attempt abort -> replan -> completion.
"""

import json
import re

import pytest

from repro.faults import COMPLETED, DEGRADED
from repro.obs import (
    Tracer,
    chrome_trace,
    chrome_trace_json,
    prometheus_text,
    spans_to_jsonl,
)
from repro.obs.export import _pack_lanes
from repro.analysis import render_repair_timeline


class TestDemoTrace:
    """The acceptance criteria: the span tree tells the whole story."""

    def test_self_healing_arc_completes(self, hub_crash_demo):
        out = hub_crash_demo.outcome
        assert out.status in (COMPLETED, DEGRADED)
        assert out.verified
        assert out.attempts >= 2 and out.replans >= 1

    def test_span_tree_levels(self, hub_crash_demo):
        tr = hub_crash_demo.tracer
        repairs = tr.find(kind="repair")
        attempts = tr.find(kind="attempt")
        pipelines = tr.find(kind="pipeline")
        transfers = tr.find(kind="transfer")
        assert len(repairs) == 1
        assert len(attempts) == hub_crash_demo.outcome.attempts
        assert pipelines and transfers
        # attempts hang off the repair, pipelines off attempts
        root = repairs[0]
        assert all(a.parent_id == root.span_id for a in attempts)
        attempt_ids = {a.span_id for a in attempts}
        assert all(p.parent_id in attempt_ids for p in pipelines)
        # every span closed, end >= start, inside the repair window
        for span in tr.spans():
            assert span.end is not None
            assert span.end >= span.start >= 0.0

    def test_repair_span_attrs(self, hub_crash_demo):
        root = hub_crash_demo.tracer.find(kind="repair")[0]
        out = hub_crash_demo.outcome
        assert root.attrs["stripe"] == "s1"
        assert root.attrs["status"] == out.status
        assert root.attrs["attempts"] == out.attempts
        assert root.attrs["bytes_received"] == out.bytes_received

    def test_failure_events_visible(self, hub_crash_demo):
        names = hub_crash_demo.tracer.event_names()
        assert "node.crash" in names
        assert "watchdog.fire" in names
        assert "attempt.abort" in names
        assert "replan" in names

    def test_ascii_timeline(self, hub_crash_demo):
        text = render_repair_timeline(hub_crash_demo.tracer)
        assert "repair s1" in text
        assert "attempt" in text
        assert "events:" in text
        assert "watchdog.fire" in text
        assert render_repair_timeline(Tracer()).startswith("no spans")


class TestChromeTrace:
    def test_json_parses(self, hub_crash_demo):
        doc = json.loads(chrome_trace_json(hub_crash_demo.tracer))
        assert doc["traceEvents"]

    def test_timestamps_sorted_and_begin_end_balanced(self, hub_crash_demo):
        doc = chrome_trace(hub_crash_demo.tracer)
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert events, "trace must contain non-metadata events"
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        # per-lane duration stacks must balance with matching names
        stacks = {}
        for e in events:
            lane = (e["pid"], e["tid"])
            if e["ph"] == "B":
                stacks.setdefault(lane, []).append((e["name"], e["ts"]))
            elif e["ph"] == "E":
                assert stacks.get(lane), f"E without B on lane {lane}"
                name, begin_ts = stacks[lane].pop()
                assert name == e["name"]
                assert e["ts"] >= begin_ts
            else:
                assert e["ph"] == "i"  # instant events are free-floating
        assert all(not stack for stack in stacks.values())

    def test_lane_metadata(self, hub_crash_demo):
        doc = chrome_trace(hub_crash_demo.tracer)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert process_names == {"repair control", "data nodes"}
        assert {"repairs", "attempts", "pipelines"} <= thread_names
        assert any(re.fullmatch(r"n\d+ uplink( #\d+)?", n) for n in thread_names)
        assert any(re.fullmatch(r"n\d+ downlink( #\d+)?", n) for n in thread_names)

    def test_pack_lanes_separates_overlaps(self):
        tr = Tracer()
        a = tr.record_span("a", 0.0, 2.0)
        b = tr.record_span("b", 1.0, 3.0)  # overlaps a
        c = tr.record_span("c", 2.5, 4.0)  # fits after a
        lanes = _pack_lanes([a, b, c])
        assert len(lanes) == 2
        assert [s.name for s in lanes[0]] == ["a", "c"]
        assert [s.name for s in lanes[1]] == ["b"]


class TestSpanJsonl:
    def test_one_valid_object_per_span(self, hub_crash_demo):
        tr = hub_crash_demo.tracer
        lines = spans_to_jsonl(tr).splitlines()
        span_lines = [json.loads(line) for line in lines]
        spans = [d for d in span_lines if "span_id" in d]
        assert len(spans) == len(list(tr.spans()))
        ids = [d["span_id"] for d in spans]
        assert len(set(ids)) == len(ids)
        # depth-first: a parent is always emitted before its children
        seen = set()
        for d in spans:
            if d["parent_id"] is not None:
                assert d["parent_id"] in seen
            seen.add(d["span_id"])

    def test_empty_tracer_yields_empty_string(self):
        assert spans_to_jsonl(Tracer()) == ""


#: Prometheus text exposition format, one line at a time.
_PROM_LINE = re.compile(
    r"^(?:"
    r"# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (?:counter|gauge|histogram)"
    r'|[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [-+]?(?:[0-9.e+-]+|Inf|NaN)"
    r")$"
)


class TestPrometheus:
    def test_every_line_parses(self, hub_crash_demo):
        text = prometheus_text(hub_crash_demo.metrics)
        assert text.endswith("\n")
        for line in text.splitlines():
            assert _PROM_LINE.match(line), f"unparseable line: {line!r}"

    def test_required_families_present(self, hub_crash_demo):
        text = prometheus_text(hub_crash_demo.metrics)
        assert "# TYPE repro_repair_seconds histogram" in text
        assert 'repro_repair_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_repair_seconds_count 1" in text
        assert "# TYPE repro_throughput_ratio gauge" in text
        for family in (
            "repro_repairs_total",
            "repro_replans_total",
            "repro_retries_total",
            "repro_watchdog_fires_total",
            "repro_node_bytes_sent_total",
            "repro_node_uplink_busy_fraction",
            "repro_plan_cache_lookups_total",
        ):
            assert family in text

    def test_histogram_buckets_cumulative(self, hub_crash_demo):
        text = prometheus_text(hub_crash_demo.metrics)
        counts = [
            int(m.group(1))
            for m in re.finditer(
                r'^repro_repair_seconds_bucket\{le="[^"]+"\} (\d+)$',
                text,
                re.M,
            )
        ]
        assert counts == sorted(counts) and counts[-1] == 1

    def test_throughput_ratio_sane(self, hub_crash_demo):
        ratio = hub_crash_demo.metrics.get("repro_throughput_ratio").value
        # a crashed hub costs time, so the achieved rate sits below the
        # planner's t_max; it must still be a positive fraction
        assert 0.0 < ratio <= 1.0
