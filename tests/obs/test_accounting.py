"""Traffic accounting through the metrics registry.

The regression of interest: after a watchdog abort, slices still in
flight under the *retired* wire epoch keep arriving.  They must be
booked as retransferred bytes — never credited to the live attempt's
received count and never double-counted against the per-node wire
counters.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSystem
from repro.ec import RSCode
from repro.faults import COMPLETED, FaultInjector, Stall
from repro.obs import MetricsRegistry, Tracer
from repro.workloads import make_trace

CHUNK = 64 * 1024


def _uplink_bytes(tracer):
    return sum(
        s.attrs["hi"] - s.attrs["lo"]
        for s in tracer.find(kind="transfer")
        if s.attrs.get("direction") == "uplink"
    )


class TestCleanRepair:
    """Baseline: no faults, one attempt, nothing retransferred."""

    @pytest.fixture(scope="class")
    def run(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        system = ClusterSystem(
            12, RSCode(9, 6), slice_bytes=4096, tracer=tracer, metrics=metrics
        )
        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, (6, CHUNK), dtype=np.uint8)
        system.write_stripe("s0", data, placement=tuple(range(9)))
        system.set_bandwidth(
            make_trace("tpch", num_nodes=12, num_snapshots=40, seed=3).snapshot(20)
        )
        system.fail_node(2)
        outcome = system.repair("s0", 2, requester=11, store=False)
        return system, tracer, metrics, outcome

    def test_received_is_exactly_one_chunk(self, run):
        _, _, metrics, outcome = run
        assert outcome.status == COMPLETED
        assert outcome.replans == 0
        assert outcome.bytes_received == CHUNK
        assert outcome.bytes_retransferred == 0
        assert metrics.total("repro_bytes_received_total") == CHUNK
        assert metrics.total("repro_bytes_retransferred_total") == 0

    def test_wire_bytes_agree_everywhere(self, run):
        system, tracer, metrics, _ = run
        wire = system.traffic_bytes
        assert wire >= CHUNK  # aggregation hops relay payload
        assert metrics.total("repro_node_bytes_sent_total") == wire
        assert _uplink_bytes(tracer) == wire
        assert sum(n.bytes_sent for n in system.nodes) == wire


class TestReplannedRepair:
    """The hub-crash demo: a replan must not double-count anything."""

    def test_retired_epoch_bytes_not_credited_twice(self, hub_crash_demo):
        out = hub_crash_demo.outcome
        assert out.replans >= 1
        # the requester was credited exactly one chunk of payload — the
        # remainder replan keeps completed intervals and late slices
        # from the retired wire epoch are dropped, never folded in
        assert out.bytes_received == CHUNK

    def test_metrics_mirror_the_outcome(self, hub_crash_demo):
        metrics = hub_crash_demo.metrics
        out = hub_crash_demo.outcome
        assert metrics.total("repro_bytes_received_total") == out.bytes_received
        assert (
            metrics.total("repro_bytes_retransferred_total")
            == out.bytes_retransferred
        )
        assert metrics.total("repro_replans_total") == out.replans
        assert metrics.total("repro_retries_total") == out.retries

    def test_wire_bytes_agree_everywhere(self, hub_crash_demo):
        system = hub_crash_demo.system
        wire = system.traffic_bytes
        # both attempts' transfers are on the wire: more than a chunk
        assert wire > CHUNK
        assert hub_crash_demo.metrics.total("repro_node_bytes_sent_total") == wire
        assert _uplink_bytes(hub_crash_demo.tracer) == wire

    def test_per_node_counters_match_node_state(self, hub_crash_demo):
        system = hub_crash_demo.system
        metrics = hub_crash_demo.metrics
        for node in system.nodes:
            counter = metrics.get(
                "repro_node_bytes_sent_total", node=str(node.node_id)
            )
            sent = 0 if counter is None else counter.value
            assert sent == node.bytes_sent


class TestScrubbedEpochAccounting:
    """A star plan feeds the requester k contributions per byte range, so
    stalling one helper past the watchdog leaves *partial* XOR state that
    the abort must scrub into ``bytes_retransferred``.  If stale slices
    from the retired wire epoch were ever folded again, the payload
    ledger below would not balance."""

    K = 6

    @pytest.fixture(scope="class")
    def run(self):
        snapshot = make_trace(
            "tpcds", num_nodes=14, num_snapshots=60, seed=4
        ).snapshot(30)

        def build(tracer=None, metrics=None):
            system = ClusterSystem(
                14, RSCode(9, self.K), algorithm="conventional",
                slice_bytes=4096, tracer=tracer, metrics=metrics,
            )
            rng = np.random.default_rng(2)
            data = rng.integers(0, 256, (self.K, CHUNK), dtype=np.uint8)
            system.write_stripe("s1", data, placement=tuple(range(9)))
            system.set_bandwidth(snapshot)
            system.fail_node(3)
            return system, data

        clean_sys, _ = build()
        clean = clean_sys.repair("s1", 3, requester=12, store=False)
        victim = min(
            e.child for p in clean.plan.pipelines for e in p.edges
        )
        tracer, metrics = Tracer(), MetricsRegistry()
        system, data = build(tracer=tracer, metrics=metrics)
        system.enable_heartbeats(period_s=0.01)
        injector = FaultInjector([
            Stall(
                node=victim,
                time=0.5 * clean.elapsed_seconds,
                duration_s=0.2,
            )
        ])
        outcome = system.repair(
            "s1", 3, requester=12, injector=injector,
            store=False, on_failure="outcome",
        )
        return data, tracer, metrics, outcome

    def test_scrub_books_partial_slices_as_retransferred(self, run):
        data, _, _, out = run
        assert out.status == COMPLETED and out.verified
        assert np.array_equal(out.rebuilt, data[3])
        assert out.retries >= 1 and out.replans >= 1
        assert out.bytes_retransferred > 0

    def test_payload_ledger_balances(self, run):
        _, _, metrics, out = run
        # every folded payload byte is either part of a range that
        # completed (k contributions per byte of chunk) or was scrubbed
        # at abort; a re-folded retired-epoch slice would break this
        assert out.bytes_received == self.K * CHUNK + out.bytes_retransferred
        assert metrics.total("repro_bytes_received_total") == out.bytes_received
        assert (
            metrics.total("repro_bytes_retransferred_total")
            == out.bytes_retransferred
        )

    def test_watchdog_story_in_trace(self, run):
        _, tracer, _, _ = run
        names = tracer.event_names()
        assert "fault.injected" in names
        assert "watchdog.fire" in names
        assert "attempt.abort" in names
        assert "replan" in names
