"""MetricsRegistry / null-registry unit behaviour."""

import math

import pytest

from repro.obs import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.metrics import Counter, Gauge, Histogram


class TestPrimitives:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge()
        g.set(4.0)
        g.inc(-1.5)
        assert g.value == 2.5

    def test_histogram_counts_and_mean(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 105.0
        assert h.value == 105.0 / 4
        assert h.counts == [1, 1, 1, 1]  # one in +Inf

    def test_histogram_cumulative_prometheus_shape(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        assert h.cumulative() == [(1.0, 1), (2.0, 1), (math.inf, 2)]

    def test_histogram_quantile_interpolates(self):
        h = Histogram(bounds=(10.0, 20.0))
        for _ in range(10):
            h.observe(5.0)  # all land in the first bucket
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(0.0) == 0.0
        assert Histogram().quantile(0.5) == 0.0  # empty
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_quantile_clamps_at_implicit_inf_bucket(self):
        # regression: estimates landing in the implicit overflow bucket
        # used to interpolate towards +Inf; they must clamp to the
        # highest finite boundary instead
        h = Histogram(bounds=(1.0, 2.0))
        for _ in range(10):
            h.observe(100.0)  # everything overflows
        assert h.quantile(0.5) == 2.0
        assert h.quantile(0.99) == 2.0
        assert math.isfinite(h.quantile(1.0))

    def test_histogram_quantile_clamps_at_explicit_inf_bound(self):
        h = Histogram(bounds=(0.5, 1.0, math.inf))
        for _ in range(4):
            h.observe(50.0)  # everything lands in the explicit +Inf bucket
        assert h.quantile(0.9) == 1.0
        assert math.isfinite(h.quantile(0.999))
        # quantiles inside finite buckets still interpolate normally
        h.observe(0.25)
        assert 0.0 < h.quantile(0.1) <= 0.5

    def test_histogram_cumulative_no_duplicate_inf_line(self):
        h = Histogram(bounds=(1.0, math.inf))
        h.observe(0.5)
        h.observe(9.0)
        cum = h.cumulative()
        assert cum == [(1.0, 1), (math.inf, 2)]
        assert sum(1 for le, _ in cum if math.isinf(le)) == 1

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())


class TestRegistry:
    def test_children_memoised(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "help", node="1")
        b = reg.counter("repro_x_total", node="1")
        other = reg.counter("repro_x_total", node="2")
        assert a is b
        assert a is not other

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", a="1", b="2")
        b = reg.counter("repro_x_total", b="2", a="1")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "9lives", "has space", "emoji✨"):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_get_and_total(self):
        reg = MetricsRegistry()
        reg.counter("repro_bytes_total", node="1").inc(10)
        reg.counter("repro_bytes_total", node="2").inc(5)
        assert reg.get("repro_bytes_total", node="1").value == 10
        assert reg.get("repro_bytes_total", node="3") is None
        assert reg.get("repro_missing") is None
        assert reg.total("repro_bytes_total") == 15
        assert reg.total("repro_missing") == 0.0

    def test_families_sorted_and_snapshot(self):
        reg = MetricsRegistry()
        reg.gauge("repro_b").set(1.0)
        reg.counter("repro_a_total").inc()
        reg.histogram("repro_h_seconds").observe(0.2)
        assert [name for name, _ in reg.families()] == [
            "repro_a_total", "repro_b", "repro_h_seconds",
        ]
        snap = reg.snapshot()
        assert snap["repro_a_total"][()] == 1.0
        hist = snap["repro_h_seconds"][()]
        assert hist["count"] == 1 and hist["sum"] == 0.2
        assert set(hist) == {"count", "sum", "mean", "p50", "p99"}

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total").inc()
        reg.clear()
        assert reg.families() == []


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True

    def test_factories_return_shared_inert_children(self):
        reg = NullMetricsRegistry()
        assert reg.counter("repro_x_total", node="1") is NULL_COUNTER
        assert reg.gauge("repro_g") is NULL_GAUGE
        assert reg.histogram("repro_h") is NULL_HISTOGRAM
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(1.0)
        NULL_GAUGE.inc()
        NULL_HISTOGRAM.observe(5.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_registers_nothing(self):
        reg = NullMetricsRegistry()
        reg.counter("repro_x_total").inc()
        assert reg.families() == []
        assert reg.total("repro_x_total") == 0.0
