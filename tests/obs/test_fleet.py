"""Fleet aggregation tier: t-digest sketches, rolling windows, caps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import (
    NULL_FLEET,
    FleetAggregator,
    NullFleetAggregator,
    RollingWindow,
    TDigest,
)
from repro.obs.fleet import OVERFLOW_KEY


class TestTDigest:
    def test_exact_for_small_samples(self):
        d = TDigest()
        for v in (3.0, 1.0, 2.0):
            d.add(v)
        assert d.count == 3
        assert d.sum == 6.0
        assert d.mean == pytest.approx(2.0)
        assert d.quantile(0.0) == 1.0
        assert d.quantile(1.0) == 3.0
        assert d.quantile(0.5) == pytest.approx(2.0)

    def test_empty(self):
        d = TDigest()
        assert d.count == 0
        assert d.quantile(0.5) == 0.0
        assert d.mean == 0.0

    def test_accuracy_on_large_stream(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(scale=1.0, size=50_000)
        d = TDigest(delta=64)
        for v in values:
            d.add(float(v))
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            assert d.quantile(q) == pytest.approx(exact, rel=0.05)
        assert d.quantile(0.0) == float(values.min())
        assert d.quantile(1.0) == float(values.max())

    def test_memory_bounded(self):
        d = TDigest(delta=64)
        for i in range(100_000):
            d.add(float(i % 977))
        # ~δ log-scaled centroids regardless of stream length
        assert d.num_centroids() < 10 * 64
        assert d.count == 100_000

    def test_merge_is_lossless_on_count_sum_extrema(self):
        rng = np.random.default_rng(4)
        a, b = TDigest(), TDigest()
        va = rng.uniform(0, 10, 5_000)
        vb = rng.uniform(5, 20, 5_000)
        for v in va:
            a.add(float(v))
        for v in vb:
            b.add(float(v))
        a.merge(b)
        combined = np.concatenate([va, vb])
        assert a.count == 10_000
        assert a.sum == pytest.approx(float(combined.sum()))
        assert a.min == float(combined.min())
        assert a.max == float(combined.max())
        assert a.quantile(0.5) == pytest.approx(
            float(np.quantile(combined, 0.5)), rel=0.05
        )


class TestRollingWindow:
    def test_windowed_view_expires_old_buckets(self):
        w = RollingWindow(window_s=10.0, buckets=10)
        w.observe(0.5, 100.0)
        w.observe(5.0, 1.0)
        assert w.count(5.0) == 2
        # t=12: the bucket holding t=0.5 has aged out, t=5 remains
        assert w.count(12.0) == 1
        assert w.digest(12.0).quantile(1.0) == 1.0
        # far future: everything expired
        assert w.count(100.0) == 0

    def test_slot_recycling_keeps_memory_fixed(self):
        w = RollingWindow(window_s=1.0, buckets=4)
        for i in range(1000):
            w.observe(i * 0.1, float(i))
        assert len(w._ring) == 4

    def test_same_bucket_accumulates(self):
        w = RollingWindow(window_s=10.0, buckets=10)
        for v in (1.0, 2.0, 3.0):
            w.observe(3.3, v)
        assert w.count(3.3) == 3
        assert w.digest(3.3).mean == pytest.approx(2.0)


class TestFleetAggregator:
    def test_labelled_series_and_aggregate_views(self):
        f = FleetAggregator(window_s=10.0)
        for i in range(10):
            f.observe("repro_repair_seconds", 0.1 * i, t=float(i), algorithm="fullrepair")
            f.observe("repro_repair_seconds", 1.0 + 0.1 * i, t=float(i), algorithm="ppr")
        assert f.metrics() == ["repro_repair_seconds"]
        assert f.series_count("repro_repair_seconds") == 2
        # per-label view
        assert f.count("repro_repair_seconds", 9.0, algorithm="ppr") == 10
        assert f.mean("repro_repair_seconds", 9.0, algorithm="ppr") > 1.0
        # aggregate view folds every label set
        assert f.count("repro_repair_seconds", 9.0) == 20
        assert f.rate_per_s("repro_repair_seconds", 9.0) == pytest.approx(2.0)

    def test_lifetime_vs_windowed(self):
        f = FleetAggregator(window_s=1.0, buckets=10)
        f.observe("repro_x", 5.0, t=0.0)
        f.observe("repro_x", 7.0, t=100.0)
        assert f.count("repro_x", now=100.0, windowed=False) == 2
        assert f.count("repro_x", now=100.0, windowed=True) == 1
        assert f.quantile("repro_x", 0.5, now=100.0, windowed=True) == 7.0

    def test_cardinality_cap_collapses_to_overflow(self):
        f = FleetAggregator(max_series=3)
        for i in range(10):
            f.observe("repro_x", float(i), t=0.0, node=str(i))
        assert f.series_count("repro_x") == 4  # 3 real + overflow
        assert f.overflowed == 7
        assert OVERFLOW_KEY in f._metrics["repro_x"]
        # nothing dropped: the aggregate still sees every observation
        assert f.count("repro_x", now=0.0, windowed=False) == 10

    def test_snapshot_shape(self):
        f = FleetAggregator(window_s=10.0)
        for i in range(5):
            f.observe("repro_x", float(i), t=float(i))
        snap = f.snapshot(now=4.0)
        entry = snap["repro_x"]
        assert entry["count"] == 5
        assert entry["window_count"] == 5
        assert set(entry) == {
            "series", "count", "mean", "p50", "p99",
            "window_count", "window_p99",
        }

    def test_merge_shards(self):
        a = FleetAggregator(window_s=10.0, buckets=10)
        b = FleetAggregator(window_s=10.0, buckets=10)
        for i in range(50):
            a.observe("repro_x", float(i), t=float(i % 10), zone="a")
            b.observe("repro_x", 100.0 + i, t=float(i % 10), zone="b")
        a.merge(b)
        assert a.series_count("repro_x") == 2
        assert a.count("repro_x", now=9.0, windowed=False) == 100
        assert a.count("repro_x", now=9.0, windowed=True) == 100
        assert a.quantile("repro_x", 1.0, now=9.0, windowed=False) == 149.0

    def test_clock_supplies_default_timestamps(self):
        now = {"t": 0.0}
        f = FleetAggregator(window_s=1.0, buckets=10, clock=lambda: now["t"])
        f.observe("repro_x", 1.0)
        now["t"] = 50.0
        assert f.count("repro_x", windowed=True) == 0
        assert f.count("repro_x", windowed=False) == 1


class TestNullFleet:
    def test_disabled_and_inert(self):
        assert NULL_FLEET.enabled is False
        assert FleetAggregator().enabled is True
        NULL_FLEET.observe("repro_x", 1.0, t=0.0, node="1")
        assert NULL_FLEET.metrics() == []
        live = FleetAggregator()
        live.observe("repro_x", 1.0, t=0.0)
        NULL_FLEET.merge(live)
        assert NULL_FLEET.metrics() == []
        assert NullFleetAggregator().enabled is False
