"""Shared fixtures: the paper's worked example and randomised contexts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import BandwidthSnapshot, RepairContext


@pytest.fixture
def fig2_snapshot() -> BandwidthSnapshot:
    """The bandwidth table of paper Fig. 2 (node 0 = requester R)."""
    return BandwidthSnapshot(
        uplink=np.array([1000.0, 600.0, 960.0, 600.0, 600.0]),
        downlink=np.array([1000.0, 300.0, 1000.0, 300.0, 300.0]),
    )


@pytest.fixture
def fig2_context(fig2_snapshot) -> RepairContext:
    """(5,3) repair instance of Fig. 2: helpers N2..N5, requester R."""
    return RepairContext(
        snapshot=fig2_snapshot, requester=0, helpers=(1, 2, 3, 4), k=3
    )


def random_context(
    rng: np.random.Generator,
    *,
    min_nodes: int = 6,
    max_nodes: int = 18,
    max_k: int = 10,
    congestion: float = 0.3,
) -> RepairContext:
    """A random repair instance with optional congested nodes."""
    n_nodes = int(rng.integers(min_nodes, max_nodes))
    k = int(rng.integers(2, min(n_nodes - 1, max_k + 1)))
    m = int(rng.integers(k, n_nodes))
    up = rng.uniform(1.0, 1000.0, n_nodes)
    down = rng.uniform(1.0, 1000.0, n_nodes)
    up[rng.random(n_nodes) < congestion] *= 0.05
    down[rng.random(n_nodes) < congestion] *= 0.05
    snap = BandwidthSnapshot(uplink=up, downlink=down)
    ids = rng.permutation(n_nodes)
    return RepairContext(
        snapshot=snap,
        requester=int(ids[0]),
        helpers=tuple(int(x) for x in ids[1 : m + 1]),
        k=k,
    )
