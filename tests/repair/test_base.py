"""Algorithm registry and timing wrapper."""

import pytest

from repro.repair import (
    RepairAlgorithm,
    algorithm_names,
    compute_plan,
    get_algorithm,
)


class TestRegistry:
    def test_all_schemes_registered(self):
        names = algorithm_names()
        for expected in ("conventional", "rp", "ppt", "pivotrepair", "ppr",
                         "fullrepair"):
            assert expected in names

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="fullrepair"):
            get_algorithm("raid-z")

    def test_kwargs_forwarded(self):
        algo = get_algorithm("ppt", max_emulations=7)
        assert algo.max_emulations == 7

    def test_unknown_kwargs_rejected(self):
        with pytest.raises(TypeError):
            get_algorithm("rp", banana=True)

    def test_instances_are_fresh(self):
        assert get_algorithm("rp") is not get_algorithm("rp")

    def test_subclass_without_name_not_registered(self):
        class Anonymous(RepairAlgorithm):
            def schedule(self, context):  # pragma: no cover
                raise NotImplementedError

        assert "" not in algorithm_names()


class TestTimingWrapper:
    def test_plan_measures_calc_seconds(self, fig2_context):
        plan = get_algorithm("fullrepair").plan(fig2_context)
        assert plan.calc_seconds is not None
        assert plan.calc_seconds > 0

    def test_schedule_leaves_calc_unset(self, fig2_context):
        plan = get_algorithm("fullrepair").schedule(fig2_context)
        assert plan.calc_seconds is None

    def test_compute_plan_one_shot(self, fig2_context):
        plan = compute_plan("pivotrepair", fig2_context)
        assert plan.algorithm == "pivotrepair"
        assert plan.calc_seconds > 0

    def test_registered_custom_algorithm_usable(self, fig2_context):
        from repro.ec.slicing import Segment
        from repro.repair.plan import Edge, Pipeline, RepairPlan

        class EchoStar(RepairAlgorithm):
            name = "test-echo-star"

            def schedule(self, context):
                k = context.k
                chosen = sorted(
                    context.helpers, key=lambda h: -context.uplink(h)
                )[:k]
                edges = [Edge(h, context.requester, 1.0) for h in chosen]
                return RepairPlan(
                    self.name, context,
                    [Pipeline(0, Segment(0.0, 1.0), edges)],
                )

        try:
            plan = compute_plan("test-echo-star", fig2_context)
            plan.validate()
        finally:
            from repro.repair.base import _REGISTRY

            _REGISTRY.pop("test-echo-star", None)
