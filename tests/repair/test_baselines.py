"""Conventional, RP, PPT and PivotRepair baselines."""

import numpy as np
import pytest

from repro.net import BandwidthSnapshot, RepairContext
from repro.repair import (
    ConventionalRepair,
    ParallelPipelineTree,
    PivotRepair,
    RepairPipelining,
    optimal_tree,
)
from tests.conftest import random_context


def uniform_context(num_nodes=8, bw=500.0, k=4):
    snap = BandwidthSnapshot.uniform(num_nodes, bw)
    return RepairContext(
        snapshot=snap, requester=0, helpers=tuple(range(1, num_nodes)), k=k
    )


class TestConventional:
    def test_star_structure(self, fig2_context):
        plan = ConventionalRepair().schedule(fig2_context)
        plan.validate()
        assert len(plan.pipelines) == 1
        pipe = plan.pipelines[0]
        assert pipe.depth() == 1
        assert all(e.parent == 0 for e in pipe.edges)
        assert len(pipe.edges) == 3

    def test_requester_downlink_shared(self, fig2_context):
        plan = ConventionalRepair().schedule(fig2_context)
        total_in = sum(e.rate for e in plan.pipelines[0].edges)
        assert total_in <= fig2_context.downlink(0) + 1e-6

    def test_prefers_high_uplink_helpers(self, fig2_context):
        plan = ConventionalRepair().schedule(fig2_context)
        # N3 (id 2, uplink 960) must be among the chosen helpers
        assert 2 in plan.pipelines[0].participants

    def test_uniform_rate_is_downlink_over_k(self):
        ctx = uniform_context(bw=400.0, k=4)
        plan = ConventionalRepair().schedule(ctx)
        # R downlink 400 shared by 4 flows
        assert plan.total_rate == pytest.approx(100.0)

    def test_dead_helpers_raise(self):
        snap = BandwidthSnapshot(
            uplink=np.array([100.0, 0.0, 0.0, 0.0]),
            downlink=np.full(4, 100.0),
        )
        ctx = RepairContext(snapshot=snap, requester=0, helpers=(1, 2, 3), k=3)
        with pytest.raises(ValueError):
            ConventionalRepair().schedule(ctx)


class TestRP:
    def test_fig2_bottleneck_is_300(self, fig2_context):
        """Paper §II-E: RP's chain is limited to 300 Mbps by N2's downlink."""
        plan = RepairPipelining().schedule(fig2_context)
        plan.validate()
        assert plan.total_rate == pytest.approx(300.0)

    def test_chain_structure(self, fig2_context):
        plan = RepairPipelining().schedule(fig2_context)
        pipe = plan.pipelines[0]
        assert pipe.depth() == 3  # k hops for k=3
        # every node has at most one child (a path)
        for node in pipe.participants:
            assert len(pipe.children_of(node)) <= 1

    def test_uniform_network_rate(self):
        ctx = uniform_context(bw=400.0, k=4)
        plan = RepairPipelining().schedule(ctx)
        assert plan.total_rate == pytest.approx(400.0)

    def test_exhaustive_beats_truncated(self):
        """Limiting subset enumeration can only hurt (or tie)."""
        rng = np.random.default_rng(7)
        for _ in range(20):
            ctx = random_context(rng, min_nodes=8, max_nodes=12, max_k=5)
            try:
                full = RepairPipelining().schedule(ctx).total_rate
                trunc = RepairPipelining(max_subsets=2).schedule(ctx).total_rate
            except ValueError:
                continue
            assert full >= trunc - 1e-9

    def test_chain_head_has_min_downlink(self, fig2_context):
        """The chain head needs no downlink, so the best head is the
        selected helper with the smallest one."""
        plan = RepairPipelining().schedule(fig2_context)
        pipe = plan.pipelines[0]
        head = [h for h in pipe.participants if not pipe.children_of(h)]
        assert len(head) == 1
        chosen = pipe.participants
        head_down = fig2_context.downlink(head[0])
        assert head_down == min(fig2_context.downlink(h) for h in chosen)

    def test_all_dead_raises(self):
        snap = BandwidthSnapshot(
            uplink=np.zeros(5), downlink=np.full(5, 100.0)
        )
        ctx = RepairContext(snapshot=snap, requester=0, helpers=(1, 2, 3, 4), k=3)
        with pytest.raises(ValueError):
            RepairPipelining().schedule(ctx)


class TestTreeOpt:
    def test_fig2_rate_is_500(self, fig2_context):
        """Paper §II-E: tree pipelines reach 500 Mbps via N3 relaying."""
        tree = optimal_tree(fig2_context)
        assert tree.rate == pytest.approx(500.0)

    def test_tree_at_least_chain(self):
        """A chain is a tree, so the optimal tree never loses to RP."""
        rng = np.random.default_rng(3)
        for _ in range(30):
            ctx = random_context(rng, min_nodes=7, max_nodes=12, max_k=6)
            try:
                chain_rate = RepairPipelining().schedule(ctx).total_rate
                tree_rate = optimal_tree(ctx).rate
            except ValueError:
                continue
            assert tree_rate >= chain_rate - 1e-9

    def test_uniform_network(self):
        ctx = uniform_context(bw=400.0, k=4)
        assert optimal_tree(ctx).rate == pytest.approx(400.0)

    def test_parents_form_tree_with_k_nodes(self, fig2_context):
        tree = optimal_tree(fig2_context)
        assert len(tree.parents) == fig2_context.k
        # all parents are the requester or other participants
        for child, parent in tree.parents.items():
            assert parent == 0 or parent in tree.parents

    def test_requester_dead_raises(self):
        snap = BandwidthSnapshot(
            uplink=np.full(5, 100.0),
            downlink=np.array([0.0, 100, 100, 100, 100]),
        )
        ctx = RepairContext(snapshot=snap, requester=0, helpers=(1, 2, 3, 4), k=3)
        with pytest.raises(ValueError):
            optimal_tree(ctx)


class TestPPT:
    def test_fig2_matches_treeopt(self, fig2_context):
        plan = ParallelPipelineTree().schedule(fig2_context)
        plan.validate()
        assert plan.total_rate == pytest.approx(500.0)

    def test_small_exhaustive_equals_oracle(self):
        """With a generous budget, brute force == polynomial optimum."""
        rng = np.random.default_rng(11)
        for _ in range(15):
            ctx = random_context(rng, min_nodes=6, max_nodes=8, max_k=4)
            try:
                ppt = ParallelPipelineTree(max_emulations=200_000).schedule(ctx)
                oracle = optimal_tree(ctx)
            except ValueError:
                continue
            assert ppt.total_rate == pytest.approx(oracle.rate, rel=1e-9)

    def test_budget_truncation_keeps_optimality(self):
        """Even a tiny budget returns the optimal rate (oracle seeding)."""
        rng = np.random.default_rng(13)
        for _ in range(10):
            ctx = random_context(rng, min_nodes=8, max_nodes=12, max_k=6)
            try:
                tiny = ParallelPipelineTree(max_emulations=5).schedule(ctx)
                oracle = optimal_tree(ctx)
            except ValueError:
                continue
            assert tiny.total_rate == pytest.approx(oracle.rate, rel=1e-9)
            assert tiny.meta["budget_exhausted"] or tiny.meta["emulated_trees"] <= 5

    def test_emulation_count_grows_with_k(self):
        small = ParallelPipelineTree(max_emulations=None).schedule(
            uniform_context(num_nodes=6, k=3)
        )
        large = ParallelPipelineTree(max_emulations=None).schedule(
            uniform_context(num_nodes=8, k=5)
        )
        assert large.meta["emulated_trees"] > small.meta["emulated_trees"]


class TestPivotRepair:
    def test_fig2(self, fig2_context):
        plan = PivotRepair().schedule(fig2_context)
        plan.validate()
        assert plan.total_rate == pytest.approx(500.0)
        # N3 (id 2) is the pivot relaying through its fat downlink
        assert 2 in plan.meta["pivots"]

    def test_always_matches_ppt_rate(self):
        """PivotRepair == PPT on throughput (the paper's Fig. 6 pairing)."""
        rng = np.random.default_rng(17)
        for _ in range(25):
            ctx = random_context(rng, min_nodes=7, max_nodes=13, max_k=6)
            try:
                pivot = PivotRepair().schedule(ctx).total_rate
                ppt = ParallelPipelineTree(max_emulations=100).schedule(ctx).total_rate
            except ValueError:
                continue
            assert pivot == pytest.approx(ppt, rel=1e-9)

    def test_plan_is_single_pipeline(self, fig2_context):
        plan = PivotRepair().schedule(fig2_context)
        assert plan.num_pipelines() == 1
        assert len(plan.pipelines[0].participants) == fig2_context.k
