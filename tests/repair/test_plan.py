"""RepairPlan / Pipeline structural validation."""

import numpy as np
import pytest

from repro.ec.slicing import Segment
from repro.net import BandwidthSnapshot, RepairContext
from repro.repair.plan import Edge, Pipeline, RepairPlan


@pytest.fixture
def ctx():
    snap = BandwidthSnapshot.uniform(6, 1000.0)
    return RepairContext(snapshot=snap, requester=0, helpers=(1, 2, 3, 4, 5), k=3)


def chain(ctx, nodes, rate=100.0, segment=(0.0, 1.0), task_id=0):
    edges = [Edge(a, b, rate) for a, b in zip(nodes, nodes[1:])]
    edges.append(Edge(nodes[-1], ctx.requester, rate))
    return Pipeline(task_id=task_id, segment=Segment(*segment), edges=edges)


class TestEdge:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Edge(1, 1, 5.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            Edge(1, 2, 0.0)


class TestPipeline:
    def test_participants_are_uploaders(self, ctx):
        p = chain(ctx, [3, 1, 2])
        assert p.participants == (1, 2, 3)

    def test_rate_is_min_edge(self, ctx):
        p = Pipeline(0, Segment(0, 1), [Edge(1, 2, 100.0), Edge(2, 0, 40.0)])
        assert p.rate == 40.0

    def test_depth_chain(self, ctx):
        assert chain(ctx, [1, 2, 3]).depth() == 3

    def test_depth_star(self, ctx):
        p = Pipeline(0, Segment(0, 1), [Edge(h, 0, 10.0) for h in (1, 2, 3)])
        assert p.depth() == 1

    def test_parent_and_children(self, ctx):
        p = chain(ctx, [1, 2])
        assert p.parent_of(1) == 2
        assert p.parent_of(2) == 0
        assert p.parent_of(0) is None
        assert p.children_of(2) == [1]

    def test_validate_ok(self, ctx):
        chain(ctx, [1, 2, 3]).validate(ctx)

    def test_requester_cannot_upload(self, ctx):
        p = Pipeline(0, Segment(0, 1), [Edge(0, 1, 10.0), Edge(1, 2, 10.0), Edge(2, 3, 10), Edge(3, 4, 10)])
        with pytest.raises(ValueError, match="root|upload"):
            p.validate(ctx)

    def test_two_parents_rejected(self, ctx):
        p = Pipeline(
            0, Segment(0, 1),
            [Edge(1, 2, 10.0), Edge(1, 3, 10.0), Edge(2, 0, 10.0), Edge(3, 0, 10.0)],
        )
        with pytest.raises(ValueError, match="two parents"):
            p.validate(ctx)

    def test_disconnected_rejected(self, ctx):
        p = Pipeline(
            0, Segment(0, 1),
            [Edge(1, 2, 10.0), Edge(2, 1, 10.0), Edge(3, 0, 10.0)],
        )
        with pytest.raises(ValueError):
            p.validate(ctx)

    def test_wrong_participant_count(self, ctx):
        p = chain(ctx, [1, 2])  # only 2 helpers, k=3
        with pytest.raises(ValueError, match="k=3"):
            p.validate(ctx)

    def test_non_helper_upload_rejected(self):
        snap = BandwidthSnapshot.uniform(6, 1000.0)
        ctx = RepairContext(snapshot=snap, requester=0, helpers=(1, 2, 3), k=2)
        p = Pipeline(0, Segment(0, 1), [Edge(4, 1, 10.0), Edge(1, 0, 10.0)])
        with pytest.raises(ValueError, match="non-helper"):
            p.validate(ctx)

    def test_empty_pipeline_rejected(self, ctx):
        with pytest.raises(ValueError):
            Pipeline(0, Segment(0, 1), []).validate(ctx)


class TestRepairPlan:
    def test_valid_single_pipeline(self, ctx):
        plan = RepairPlan("t", ctx, [chain(ctx, [1, 2, 3])])
        plan.validate()

    def test_total_rate_single(self, ctx):
        plan = RepairPlan("t", ctx, [chain(ctx, [1, 2, 3], rate=123.0)])
        assert plan.total_rate == pytest.approx(123.0)

    def test_total_rate_multi(self, ctx):
        plan = RepairPlan(
            "t", ctx,
            [
                chain(ctx, [1, 2, 3], rate=30.0, segment=(0.0, 0.3)),
                chain(ctx, [3, 4, 5], rate=70.0, segment=(0.3, 1.0), task_id=1),
            ],
        )
        # both pipelines proportional: aggregate = 100
        assert plan.total_rate == pytest.approx(100.0)
        plan.validate()

    def test_gap_rejected(self, ctx):
        plan = RepairPlan(
            "t", ctx,
            [
                chain(ctx, [1, 2, 3], segment=(0.0, 0.4)),
                chain(ctx, [3, 4, 5], segment=(0.6, 1.0), task_id=1),
            ],
        )
        with pytest.raises(ValueError, match="no pipeline"):
            plan.validate()

    def test_overlap_rejected(self, ctx):
        plan = RepairPlan(
            "t", ctx,
            [
                chain(ctx, [1, 2, 3], segment=(0.0, 0.6)),
                chain(ctx, [3, 4, 5], segment=(0.4, 1.0), task_id=1),
            ],
        )
        with pytest.raises(ValueError, match="overlap"):
            plan.validate()

    def test_short_coverage_rejected(self, ctx):
        plan = RepairPlan("t", ctx, [chain(ctx, [1, 2, 3], segment=(0.0, 0.9))])
        with pytest.raises(ValueError):
            plan.validate()

    def test_rate_feasibility_checked(self, ctx):
        plan = RepairPlan("t", ctx, [chain(ctx, [1, 2, 3], rate=2000.0)])
        with pytest.raises(ValueError, match="oversubscribed"):
            plan.validate()
        plan.validate(check_rates=False)  # structure alone is fine

    def test_empty_plan_rejected(self, ctx):
        with pytest.raises(ValueError):
            RepairPlan("t", ctx, []).validate()

    def test_flows_alignment(self, ctx):
        plan = RepairPlan("t", ctx, [chain(ctx, [1, 2, 3], rate=55.0)])
        flows, rates = plan.flows()
        assert len(flows) == 3
        assert (rates == 55.0).all()

    def test_num_pipelines_skips_empty_segments(self, ctx):
        plan = RepairPlan(
            "t", ctx,
            [
                chain(ctx, [1, 2, 3], segment=(0.0, 1.0)),
                chain(ctx, [3, 4, 5], segment=(1.0, 1.0), task_id=1),
            ],
        )
        assert plan.num_pipelines() == 1


class TestNodeRates:
    def test_chain_rates_sum_per_constraint(self, ctx):
        # 1 -> 2 -> 3 -> requester(0), every edge at 55 Mbps
        plan = RepairPlan("t", ctx, [chain(ctx, [1, 2, 3], rate=55.0)])
        rates = plan.node_rates()
        assert set(rates) == {0, 1, 2, 3}
        assert rates[1].uplink_mbps == pytest.approx(55.0)
        assert rates[1].downlink_mbps == 0.0  # leaf receives nothing
        assert rates[2].uplink_mbps == pytest.approx(55.0)
        assert rates[2].downlink_mbps == pytest.approx(55.0)  # relay
        assert rates[0].uplink_mbps == 0.0  # requester only downloads
        assert rates[0].downlink_mbps == pytest.approx(55.0)

    def test_rates_accumulate_across_pipelines(self, ctx):
        plan = RepairPlan(
            "t", ctx,
            [
                chain(ctx, [1, 2, 3], rate=30.0, segment=(0.0, 0.3)),
                chain(ctx, [3, 4, 5], rate=70.0, segment=(0.3, 1.0), task_id=1),
            ],
        )
        rates = plan.node_rates()
        # node 3 uploads in both pipelines (30 to requester-chain, 70 to 4)
        assert rates[3].uplink_mbps == pytest.approx(100.0)
        assert rates[3].downlink_mbps == pytest.approx(30.0)
        assert rates[0].downlink_mbps == pytest.approx(100.0)
