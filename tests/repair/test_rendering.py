"""Plan rendering (text trees + Graphviz)."""

from repro.core import FullRepair
from repro.repair import RepairPipelining, compute_plan, plan_to_dot, render_plan


class TestRenderPlan:
    def test_header_and_throughput(self, fig2_context):
        text = render_plan(FullRepair().schedule(fig2_context))
        assert "fullrepair" in text
        assert "900.0 Mbps" in text
        assert "pipeline task" in text

    def test_chain_renders_as_path(self, fig2_context):
        text = render_plan(RepairPipelining().schedule(fig2_context))
        # one `--/|-- connector per hop
        assert text.count("Mbps up") == fig2_context.k

    def test_requester_marked(self, fig2_context):
        text = render_plan(compute_plan("pivotrepair", fig2_context))
        assert "R(n0)" in text

    def test_all_helpers_appear_for_fullrepair(self, fig2_context):
        text = render_plan(FullRepair().schedule(fig2_context))
        for node in (1, 2, 3, 4):
            assert f"n{node}" in text


class TestPlanToDot:
    def test_valid_digraph(self, fig2_context):
        dot = plan_to_dot(FullRepair().schedule(fig2_context))
        assert dot.startswith("digraph repair {")
        assert dot.rstrip().endswith("}")
        assert "doublecircle" in dot  # requester styling

    def test_edges_labelled_with_rates(self, fig2_context):
        plan = RepairPipelining().schedule(fig2_context)
        dot = plan_to_dot(plan)
        assert 'label="300"' in dot

    def test_one_edge_line_per_plan_edge(self, fig2_context):
        plan = FullRepair().schedule(fig2_context)
        dot = plan_to_dot(plan)
        edge_lines = [l for l in dot.splitlines() if "->" in l]
        assert len(edge_lines) == sum(len(p.edges) for p in plan.pipelines)
