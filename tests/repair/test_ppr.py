"""PPR baseline: balanced-binary-tree structure and rate."""

import math

import numpy as np
import pytest

from repro.net import BandwidthSnapshot, RepairContext
from repro.repair import PartialParallelRepair, PivotRepair
from repro.repair.ppr import balanced_tree_parents
from tests.conftest import random_context


def uniform_context(num_nodes=12, bw=400.0, k=7):
    snap = BandwidthSnapshot.uniform(num_nodes, bw)
    return RepairContext(
        snapshot=snap, requester=0, helpers=tuple(range(1, num_nodes)), k=k
    )


class TestBalancedTree:
    def test_heap_layout(self):
        parents = balanced_tree_parents([10, 11, 12, 13, 14], root=99)
        assert parents == {10: 99, 11: 10, 12: 10, 13: 11, 14: 11}

    def test_single_node(self):
        assert balanced_tree_parents([5], root=0) == {5: 0}

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7, 10, 15])
    def test_depth_is_logarithmic(self, k):
        nodes = list(range(1, k + 1))
        parents = balanced_tree_parents(nodes, root=0)
        depth = 0
        for node in nodes:
            d, cur = 0, node
            while cur != 0:
                cur = parents[cur]
                d += 1
            depth = max(depth, d)
        assert depth == math.ceil(math.log2(k + 1))


class TestPPR:
    def test_plan_validates(self, fig2_context):
        plan = PartialParallelRepair().schedule(fig2_context)
        plan.validate()
        assert plan.num_pipelines() == 1

    def test_log_depth_rounds(self):
        ctx = uniform_context(k=7)
        plan = PartialParallelRepair().schedule(ctx)
        assert plan.meta["rounds"] == 3  # ceil(log2(8))
        assert plan.pipelines[0].depth() == 3

    def test_uniform_rate_is_halved_by_fan_in(self):
        """With fan-in 2, interior downlinks split across two children."""
        ctx = uniform_context(bw=400.0, k=7)
        plan = PartialParallelRepair().schedule(ctx)
        assert plan.total_rate == pytest.approx(200.0)

    def test_never_beats_optimal_tree(self):
        """PPR's fixed topology is a tree, so PivotRepair dominates it."""
        rng = np.random.default_rng(5)
        compared = 0
        for _ in range(40):
            ctx = random_context(rng, min_nodes=7, max_nodes=14, max_k=8)
            try:
                ppr = PartialParallelRepair().schedule(ctx).total_rate
                opt = PivotRepair().schedule(ctx).total_rate
            except ValueError:
                continue
            assert opt >= ppr - 1e-9
            compared += 1
        assert compared > 25

    def test_shallow_vs_chain_depth(self, fig2_context):
        """PPR's depth beats RP's k-hop chain (its design goal)."""
        from repro.repair import RepairPipelining

        ppr = PartialParallelRepair().schedule(fig2_context)
        rp = RepairPipelining().schedule(fig2_context)
        assert ppr.pipelines[0].depth() < rp.pipelines[0].depth()

    def test_dead_links_raise(self):
        snap = BandwidthSnapshot(uplink=np.zeros(5), downlink=np.full(5, 10.0))
        ctx = RepairContext(snapshot=snap, requester=0, helpers=(1, 2, 3, 4), k=3)
        with pytest.raises(ValueError):
            PartialParallelRepair().schedule(ctx)

    def test_registered(self):
        from repro.repair import algorithm_names, get_algorithm

        assert "ppr" in algorithm_names()
        assert isinstance(get_algorithm("ppr"), PartialParallelRepair)
