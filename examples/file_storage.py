#!/usr/bin/env python3
"""Files on an erasure-coded cluster: write, fail, read degraded, repair.

Stores multi-stripe files through the :class:`repro.cluster.FileStore`
layer, kills a node, shows the degraded-read penalty end users feel, then
runs batched full-node recovery and shows reads returning to normal.

Run:  python examples/file_storage.py
"""

import numpy as np

from repro import ClusterSystem, RSCode
from repro.cluster import FileStore
from repro.cluster.placement import LoadBalancedPlacement
from repro.workloads import make_trace


def main() -> None:
    code = RSCode(6, 4)
    cluster = ClusterSystem(12, code, algorithm="fullrepair", slice_bytes=8192)
    trace = make_trace("tpch", num_nodes=12, num_snapshots=100, seed=21)
    cluster.set_bandwidth(trace.snapshot(40))
    store = FileStore(
        cluster,
        chunk_bytes=16 * 1024,
        placement=LoadBalancedPlacement(12, code.n),
    )

    rng = np.random.default_rng(5)
    originals = {}
    for name, size in (("logs.tar", 300_000), ("model.bin", 150_000), ("db.sqlite", 90_000)):
        data = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        entry = store.write(name, data)
        originals[name] = data
        print(f"wrote {name}: {size} B across {entry.num_stripes} stripes")

    print("\nhealthy reads:")
    for name in store.files():
        payload, secs = store.read(name)
        assert payload == originals[name]
        print(f"  {name}: {secs * 1e3:7.2f} ms")

    victim = cluster.master.stripe(store.stripes_of("logs.tar")[0]).placement[0]
    cluster.fail_node(victim)
    affected = store.affected_files(victim)
    print(f"\nnode {victim} fails — affected files: {affected}")
    print("degraded reads (lost chunks rebuilt on the read path):")
    for name in affected:
        payload, secs = store.read(name)
        assert payload == originals[name]
        print(f"  {name}: {secs * 1e3:7.2f} ms")

    print("\nrunning batched full-node recovery...")
    outcomes = cluster.repair_node(victim)
    assert all(o.verified for o in outcomes.values())
    print(f"  {len(outcomes)} chunks rebuilt and verified")

    print("reads after recovery:")
    for name in affected:
        payload, secs = store.read(name)
        assert payload == originals[name]
        print(f"  {name}: {secs * 1e3:7.2f} ms")


if __name__ == "__main__":
    main()
