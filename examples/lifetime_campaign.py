#!/usr/bin/env python3
"""Fleet-lifetime durability: what repair speed buys over the years.

Runs a Monte-Carlo campaign — millions of stripe-years of disk deaths
and correlated machine outages against the real recovery orchestrator
— twice: once with pipelined repair cost (the FullRepair regime) and
once with conventional serial-rebuild cost (~k times slower per
repair).  Prints both durability reports plus the sweep table that
puts the MTTDL / durability-nines difference side by side.

Run:  python examples/lifetime_campaign.py [--trials N] [--years Y]
"""

import argparse

from repro.analysis import render_lifetime, render_lifetime_sweep
from repro.lifetime import (
    ExponentialProcess,
    LifetimeConfig,
    RepairModel,
    run_monte_carlo,
    sweep_repair_speed,
    with_pipeline_factor,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=2,
                        help="independent-seed Monte-Carlo trials")
    parser.add_argument("--years", type=float, default=1.5,
                        help="simulated years per trial")
    parser.add_argument("--stripes", type=int, default=10_000)
    parser.add_argument("--serial-factor", type=float, default=10.0,
                        help="repair-cost multiple for the conventional arm")
    parser.add_argument("--seed", type=int, default=2023)
    args = parser.parse_args()

    # An accelerated-aging fleet: disks die in months, machines blink
    # for hours, so a couple of simulated years produce real losses.
    config = LifetimeConfig(
        n=14,
        k=10,
        num_stripes=args.stripes,
        placement_groups=32,
        years=args.years,
        seed=args.seed,
        disk_process=ExponentialProcess.from_years(0.12, mttr_hours=12.0),
        machine_process=ExponentialProcess.from_years(0.5, mttr_hours=4.0),
        repair_model=RepairModel(chunk_mib=16.0, node_mbps=400.0),
        budget_fraction=0.3,
    )

    pipelined = run_monte_carlo(
        with_pipeline_factor(config, 1.0), trials=args.trials
    )
    print("=== pipelined repair (FullRepair) ===")
    print(render_lifetime(pipelined))

    conventional = run_monte_carlo(
        with_pipeline_factor(config, args.serial_factor), trials=args.trials
    )
    print()
    print(f"=== conventional repair ({args.serial_factor:g}x cost) ===")
    print(render_lifetime(conventional))

    print()
    print(render_lifetime_sweep([
        (1.0, pipelined), (args.serial_factor, conventional),
    ]))


if __name__ == "__main__":
    main()
