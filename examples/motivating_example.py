#!/usr/bin/env python3
"""The paper's worked example, end to end (Fig. 2, Fig. 3, Tables II-III).

Walks Algorithm 1 (maximum pipelined repair throughput) and Algorithm 2
(task scheduling) on the exact bandwidth table of Fig. 2 and prints the
paper's intermediate artefacts: the picked node, the adjusted bandwidths
(Table II), the own-task assignment, and the per-node task segments
(Table III).

Run:  python examples/motivating_example.py
"""

import numpy as np

from repro import BandwidthSnapshot, RepairContext
from repro.core import max_pipelined_throughput, schedule_tasks

NODE = {0: "R", 1: "N2", 2: "N3", 3: "N4", 4: "N5"}


def main() -> None:
    snapshot = BandwidthSnapshot(
        uplink=np.array([1000.0, 600.0, 960.0, 600.0, 600.0]),
        downlink=np.array([1000.0, 300.0, 1000.0, 300.0, 300.0]),
    )
    context = RepairContext(snapshot=snapshot, requester=0, helpers=(1, 2, 3, 4), k=3)

    print("=== Algorithm 1: maximum pipelined repair throughput ===")
    res = max_pipelined_throughput(context)
    print(f"t_max = {res.t_max:.0f} Mbps   (paper: 900 Mbps)")
    print(f"picked into E: {[NODE[h] for h in res.picked]}   (paper: [N3])")
    print("\nTable II — adjusted bandwidths after Algorithm 1:")
    print(f"{'node':>6} {'uplink before':>14} {'after':>7} {'downlink':>9}")
    for h in context.helpers:
        print(
            f"{NODE[h]:>6} {context.uplink(h):>14.0f} {res.uplink[h]:>7.0f} "
            f"{res.downlink[h]:>9.0f}"
        )

    print("\n=== Algorithm 2: pipelined repair task scheduling ===")
    sched = schedule_tasks(context, res)
    print("own-task assignment (hub, speed):")
    for t in sched.tasks:
        print(f"  Task{t.task_id}: hub {NODE[t.hub]:>3} at {t.speed:5.0f} Mbps")

    print("\nTable III — task segments per node (chunk positions x/900):")
    rows: dict[str, list[str]] = {}
    for p in sched.pipelines:
        lo, hi = p.segment.start * res.t_max, p.segment.stop * res.t_max
        for e in p.edges:
            rows.setdefault(NODE[e.child], []).append(
                f"Task{p.task_id} {lo:3.0f}-{hi:3.0f} -> {NODE[e.parent]}"
            )
    for node in ("N2", "N3", "N4", "N5"):
        print(f"  {node}: " + "; ".join(rows.get(node, [])))

    total = sum(p.rate for p in sched.pipelines)
    print(f"\naggregate pipeline rate: {total:.0f} Mbps == t_max — "
          "the schedule realises the optimum")


if __name__ == "__main__":
    main()
