#!/usr/bin/env python3
"""Background recovery under foreground load: the repair control plane.

Kills two nodes (staggered, so a double loss lands mid-recovery) while
a seeded foreground read stream is running, and lets the
RecoveryOrchestrator drain the backlog: most-exposed stripes first,
every repair planned inside a budget share of cluster bandwidth, with
the SLO engine squeezing the repair throttle whenever foreground p95
latency breaches.

Run:  python examples/background_recovery.py [--budget F] [--no-slo]
"""

import argparse

from repro.analysis import render_recovery, render_slo
from repro.recovery import run_recovery_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.5,
                        help="repair bandwidth budget fraction")
    parser.add_argument("--stripes", type=int, default=24)
    parser.add_argument("--reads", type=int, default=200)
    parser.add_argument("--no-slo", action="store_true",
                        help="disable the SLO-coupled throttle")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    scenario = run_recovery_scenario(
        num_stripes=args.stripes,
        foreground_reads=args.reads,
        budget_fraction=args.budget,
        kills=((0, 0.001), (3, 0.004)),
        slo_latency_multiple=None if args.no_slo else 1.5,
        seed=args.seed,
    )
    print(render_recovery(scenario.report, scenario.tracer))

    if scenario.slo is not None:
        print()
        print(render_slo(scenario.slo))

    # spot-check: every repaired stripe decodes back to its original bytes
    bad = [
        r.stripe_id
        for r in scenario.orchestrator.records
        if r.status != "failed" and not r.verified
    ]
    print()
    print("verification:", "FAILED for " + ", ".join(bad) if bad else "all rebuilt chunks byte-identical")


if __name__ == "__main__":
    main()
