#!/usr/bin/env python3
"""End-to-end clustered-storage demo with real erasure-coded data.

Builds a 12-node cluster running a (9,6) RS code, writes a stripe of
random data, fails a node under a TPC-DS-like bandwidth snapshot, and
repairs the lost chunk with each scheduling algorithm — verifying the
rebuilt bytes and comparing the simulated repair times and the repair
traffic each scheme moves.

Run:  python examples/cluster_repair_demo.py
"""

import numpy as np

from repro import ClusterSystem, RSCode
from repro.workloads import make_trace


def main() -> None:
    code = RSCode(9, 6)
    trace = make_trace("tpcds", num_nodes=12, num_snapshots=200, seed=42)
    congested = trace.congested_instants()
    snapshot = trace.snapshot(int(congested[0]))
    print(f"bandwidth snapshot C_v = {snapshot.cv(direction='mean'):.2f} "
          f"(instant {int(congested[0])} of a TPC-DS-like trace)")

    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, (code.k, 256 * 1024), dtype=np.uint8)

    print(f"\n{'algorithm':>14} {'verified':>9} {'time':>10} {'traffic in':>11} "
          f"{'pipelines':>10}")
    for algorithm in ("conventional", "rp", "ppt", "pivotrepair", "fullrepair"):
        cluster = ClusterSystem(12, code, algorithm=algorithm, slice_bytes=16 * 1024)
        cluster.write_stripe("stripe-0", data, placement=tuple(range(9)))
        cluster.set_bandwidth(snapshot)
        cluster.fail_node(4)
        outcome = cluster.repair("stripe-0", failed_node=4, requester=10)
        assert outcome.verified, "repair must be byte-exact"
        print(
            f"{algorithm:>14} {str(outcome.verified):>9} "
            f"{outcome.elapsed_seconds * 1e3:8.2f}ms "
            f"{outcome.bytes_received / 1024:9.0f}KiB "
            f"{outcome.plan.num_pipelines():>10}"
        )

    print("\nNote the conventional scheme's repair penalty: it hauls k full")
    print("chunks into the requester, while every pipelined scheme delivers")
    print("exactly one rebuilt chunk's worth of traffic to it.")


if __name__ == "__main__":
    main()
