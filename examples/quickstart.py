#!/usr/bin/env python3
"""Quickstart: schedule and execute a single-chunk repair.

Builds the paper's Fig. 2 bandwidth scenario — a (5,3) RS code, four
surviving helpers with uneven uplinks/downlinks, and a requester — then
plans the repair with every algorithm and simulates moving a 64 MiB
chunk.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BandwidthSnapshot,
    RepairContext,
    TransferParams,
    algorithm_names,
    compute_plan,
    execute,
)
from repro.net import units


def main() -> None:
    # Node 0 is the requester R; nodes 1-4 are helpers N2..N5 (Fig. 2).
    snapshot = BandwidthSnapshot(
        uplink=np.array([1000.0, 600.0, 960.0, 600.0, 600.0]),
        downlink=np.array([1000.0, 300.0, 1000.0, 300.0, 300.0]),
    )
    context = RepairContext(snapshot=snapshot, requester=0, helpers=(1, 2, 3, 4), k=3)
    params = TransferParams(chunk_bytes=units.mib(64), slice_bytes=units.kib(64))

    print("Repairing one 64 MiB chunk of a (5,3) RS stripe")
    print(f"{'algorithm':>14} {'rate':>10} {'pipelines':>10} {'calc':>12} {'transfer':>10}")
    for name in algorithm_names():
        plan = compute_plan(name, context)
        result = execute(plan, params)
        print(
            f"{name:>14} {plan.total_rate:8.1f} Mb {plan.num_pipelines():>10} "
            f"{plan.calc_seconds * 1e6:10.1f}us {result.transfer_seconds:9.3f}s"
        )

    plan = compute_plan("fullrepair", context)
    print("\nFullRepair pipelines (chunk positions in Mbps-units of t_max):")
    t_max = plan.meta["t_max"]
    name = lambda node: "R" if node == 0 else f"N{node + 1}"  # noqa: E731
    for p in plan.pipelines:
        seg = f"[{p.segment.start * t_max:5.0f}, {p.segment.stop * t_max:5.0f})"
        hops = " + ".join(f"{name(e.child)}->{name(e.parent)}" for e in p.edges)
        print(f"  task {p.task_id}: {seg} at {p.rate:5.1f} Mbps via {hops}")


if __name__ == "__main__":
    main()
