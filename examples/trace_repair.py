#!/usr/bin/env python3
"""Trace a self-healing repair and export its telemetry.

Runs the canned demo from :mod:`repro.obs.demo`: a (14,10) stripe is
rebuilt through the FullRepair planner while the plan's hub helper is
crashed mid-transfer.  The live tracer captures the whole self-healing
arc — watchdog fire, attempt abort, remainder replan — as a span tree
keyed to simulated time, and the metrics registry captures counters,
gauges and histograms for the run.  The script then exports everything:

* an ASCII timeline on stdout,
* ``trace_repair.chrome.json`` — load it in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` to see per-node
  uplink/downlink lanes next to the repair control rows,
* ``trace_repair.spans.jsonl`` — one JSON object per span,
* ``trace_repair.prom`` — a Prometheus text snapshot.

Run:  python examples/trace_repair.py
"""

from pathlib import Path

from repro.analysis import render_repair_timeline
from repro.obs import chrome_trace_json, prometheus_text, spans_to_jsonl
from repro.obs.demo import traced_hub_crash_repair


def main() -> None:
    demo = traced_hub_crash_repair()
    out = demo.outcome
    print(render_repair_timeline(demo.tracer))
    print()
    print(
        f"hub {demo.hub} crashed at {demo.crash_at_s * 1e3:.2f} ms; repair "
        f"{out.status} after {out.attempts} attempts, verified={out.verified}"
    )

    here = Path(__file__).resolve().parent
    chrome = here / "trace_repair.chrome.json"
    chrome.write_text(chrome_trace_json(demo.tracer))
    jsonl = here / "trace_repair.spans.jsonl"
    jsonl.write_text(spans_to_jsonl(demo.tracer))
    prom = here / "trace_repair.prom"
    prom.write_text(prometheus_text(demo.metrics))
    print(f"\nwrote {chrome.name}, {jsonl.name}, {prom.name}")
    print("open the .chrome.json in https://ui.perfetto.dev to explore")


if __name__ == "__main__":
    main()
