#!/usr/bin/env python3
"""Catch a diverging repair online with the streaming detectors.

Two acts, both deterministic (simulated time only):

1. **Straggling helper, caught live.**  The canned demo from
   :mod:`repro.obs.demo`: a (14,10) repair whose direct helper is
   rate-capped to a crawl mid-transfer.  The blunt watchdog timeout
   would let the attempt limp on; the
   :class:`~repro.obs.detect.DivergenceMonitor` wired into the cluster
   watchdog sees the realised/planned throughput ratio collapse and
   aborts the attempt early (the ``detect.abort`` control action in the
   log below).

2. **Drifting trace, detector-triggered re-planning.**  A long repair
   under a drifting SWIM trace with a helper dying mid-flight,
   simulated twice: never re-planning, and re-planning only when the
   plan-divergence detector alarms (``replan_on="detect"``).

The straggler run is exported as ``detect_divergence.chrome.json`` —
load it in Perfetto (https://ui.perfetto.dev) and the ``detect.alarm``
/ ``detect.abort`` instants ride the repair's track next to the
watchdog events.

Run:  python examples/detect_divergence.py
"""

from pathlib import Path

from repro.analysis import render_detect
from repro.obs import chrome_trace_json
from repro.obs.demo import detected_straggler_repair
from repro.repair import get_algorithm
from repro.sim.dynamics import simulate_under_drift
from repro.workloads import make_trace


def straggler_act() -> None:
    demo = detected_straggler_repair()
    out = demo.outcome
    print(render_detect(demo.monitor, demo.tracer))
    print()
    print(
        f"helper {demo.helper} capped at {demo.fault_at_s * 1e3:.2f} ms; "
        f"repair {out.status} after {out.attempts} attempt(s) in "
        f"{out.elapsed_seconds * 1e3:.2f} ms "
        f"(clean run: {demo.clean_elapsed_s * 1e3:.2f} ms)"
    )

    here = Path(__file__).resolve().parent
    chrome = here / "detect_divergence.chrome.json"
    chrome.write_text(chrome_trace_json(demo.tracer))
    print(f"\nwrote {chrome.name}")
    print("open it in https://ui.perfetto.dev to see the detect.* events")


def drift_act() -> None:
    algorithm = get_algorithm("fullrepair")
    trace = make_trace("swim", num_nodes=10, num_snapshots=400, seed=3)
    kwargs = dict(
        start_instant=0,
        requester=9,
        helpers=tuple(range(6)),
        k=4,
        chunk_bytes=2 * 1024**3,
        interval_s=1.0,
        dead_from={2: 5.0},  # helper 2 dies 5 s in
        stall_deadline_s=120.0,
    )
    never = simulate_under_drift(algorithm, trace, **kwargs)
    detect = simulate_under_drift(
        algorithm, trace, replan_on="detect", replan_interval_s=15.0, **kwargs
    )
    print("drifting trace, helper 2 dead at 5 s:")
    print(
        f"  never re-plan : {never.seconds:6.1f} s "
        f"({never.stalled_intervals} stalled interval(s))"
    )
    alarm_at = ", ".join(f"{t:.0f} s" for t in detect.alarm_seconds)
    print(
        f"  on detection  : {detect.seconds:6.1f} s "
        f"({detect.replans} replan(s), alarm(s) at {alarm_at})"
    )


def main() -> None:
    straggler_act()
    print()
    drift_act()


if __name__ == "__main__":
    main()
