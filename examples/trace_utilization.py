#!/usr/bin/env python3
"""Reproduce the paper's Table-I observation at interactive scale.

Generates the three synthetic workload traces (TPC-DS / TPC-H / SWIM
substitutes), buckets snapshots by network unevenness (C_v), and shows
how much of the cluster's available repair bandwidth RP and
PPT/PivotRepair actually use — versus what FullRepair's multi-pipeline
schedule captures.

Run:  python examples/trace_utilization.py
"""

from repro.analysis import render_utilization_table, utilization_experiment
from repro.workloads import make_trace, trace_cv


def main() -> None:
    print("per-workload unevenness profile (6000-snapshot traces):")
    for name in ("tpcds", "tpch", "swim"):
        trace = make_trace(name, num_snapshots=6000, seed=0)
        cv = trace_cv(trace)
        print(
            f"  {name:>6}: mean available {trace.uplink.mean():6.1f} Mbps, "
            f"C_v mean {cv.mean():.2f}, p95 {sorted(cv)[int(0.95 * len(cv))]:.2f}, "
            f"congested instants {len(trace.congested_instants())}"
        )

    print("\nTable I reproduction ((14,10), pooled over the three workloads):")
    table = utilization_experiment(
        num_snapshots=2000,
        samples_per_workload=400,
        seed=0,
        algorithms=("rp", "pivotrepair", "fullrepair"),
    )
    print(render_utilization_table(table))
    print(
        "\nReading: single-pipeline schemes leave the unselected nodes'"
        "\nbandwidth idle and, as C_v grows, strand most of the selected"
        "\nnodes' bandwidth too — the head-room FullRepair's multiple"
        "\npipelines capture."
    )


if __name__ == "__main__":
    main()
