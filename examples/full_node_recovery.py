#!/usr/bin/env python3
"""Whole-node failure recovery with batched multi-pipeline repair.

Builds a 14-node cluster with several (9,6) stripes, kills a node, and
recovers every chunk it held — comparing the sequential and batched
full-node strategies and verifying all rebuilt bytes.  Also demonstrates
degraded reads and recovery from a helper dying *during* a repair.

Run:  python examples/full_node_recovery.py
"""

import numpy as np

from repro import ClusterSystem, RSCode
from repro.workloads import make_trace


def build_cluster(algorithm: str) -> tuple[ClusterSystem, dict, int]:
    code = RSCode(9, 6)
    cluster = ClusterSystem(14, code, algorithm=algorithm, slice_bytes=16 * 1024)
    rng = np.random.default_rng(11)
    originals = {}
    for i in range(6):
        sid = f"stripe-{i}"
        data = rng.integers(0, 256, (code.k, 128 * 1024), dtype=np.uint8)
        placement = tuple(int(x) for x in rng.permutation(13)[:9])
        cluster.write_stripe(sid, data, placement=placement)
        originals[sid] = data
    trace = make_trace("swim", num_nodes=14, num_snapshots=300, seed=11)
    cluster.set_bandwidth(trace.snapshot(int(trace.congested_instants()[0])))
    victim = cluster.master.stripe("stripe-0").placement[0]
    return cluster, originals, victim


def main() -> None:
    print("=== full-node recovery: sequential vs batched ===")
    for strategy in ("sequential", "batched"):
        cluster, _, victim = build_cluster("fullrepair")
        cluster.fail_node(victim)
        stripes = cluster.stripes_on(victim)
        outcomes = cluster.repair_node(victim, strategy=strategy)
        assert all(o.verified for o in outcomes.values())
        span = max(o.elapsed_seconds for o in outcomes.values())
        print(
            f"  {strategy:>10}: node {victim} held {len(stripes)} chunks, "
            f"all rebuilt+verified; slowest repair {span * 1e3:.1f} ms"
        )

    print("\n=== degraded read through a failure ===")
    cluster, originals, victim = build_cluster("fullrepair")
    sid = cluster.stripes_on(victim)[0]
    lost = cluster.master.stripe(sid).chunk_on(victim)
    cluster.fail_node(victim)
    reader = next(
        r for r in range(cluster.num_nodes)
        if cluster.is_alive(r) and r not in cluster.master.stripe(sid).placement
    )
    payload, secs = cluster.degraded_read(sid, lost, reader=reader)
    ok = (lost >= 6) or bool(np.array_equal(payload, originals[sid][lost]))
    print(f"  chunk {lost} of {sid} served in {secs * 1e3:.2f} ms "
          f"(byte-exact: {ok})")

    print("\n=== helper dies mid-repair ===")
    cluster, _, victim = build_cluster("fullrepair")
    sid = cluster.stripes_on(victim)[0]
    cluster.fail_node(victim)
    helpers = [
        n for n in cluster.master.stripe(sid).placement if n != victim
    ]
    requester = next(
        r for r in range(cluster.num_nodes)
        if cluster.is_alive(r) and r not in cluster.master.stripe(sid).placement
    )
    out = cluster.repair(
        sid, failed_node=victim, requester=requester,
        inject_failure=(helpers[0], 0.001),
    )
    print(
        f"  helper {helpers[0]} killed 1 ms into the repair: "
        f"verified={out.verified} after {out.attempts} attempts "
        f"({out.elapsed_seconds * 1e3:.1f} ms total)"
    )


if __name__ == "__main__":
    main()
