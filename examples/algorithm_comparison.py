#!/usr/bin/env python3
"""Mini Experiments 1-3: repair time across workloads and (n, k).

Sweeps the paper's four RS parameterisations over sampled congested
bandwidth snapshots of each workload and prints the Fig. 4/5/6 tables at
reduced sample counts (pass --samples/--snapshots for paper scale).

Run:  python examples/algorithm_comparison.py [--samples N] [--snapshots N]
"""

import argparse

from repro.analysis import (
    PAPER_CODES,
    render_comparison,
    render_reductions,
    repair_time_experiment,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=8,
                        help="repair instances per cell (paper: 100)")
    parser.add_argument("--snapshots", type=int, default=800,
                        help="trace length to sample from (paper: 6000)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    results = []
    for workload in ("tpcds", "tpch", "swim"):
        for n, k in PAPER_CODES:
            results.append(
                repair_time_experiment(
                    workload=workload,
                    n=n,
                    k=k,
                    num_samples=args.samples,
                    num_snapshots=args.snapshots,
                    seed=args.seed,
                    algorithm_kwargs={"ppt": {"max_emulations": 2000}},
                )
            )
            print(f"  done: {workload} ({n},{k})")

    for metric in ("overall", "calc", "transfer"):
        print()
        print(render_comparison(results, metric=metric))
    print()
    print(render_reductions(results, metric="overall"))


if __name__ == "__main__":
    main()
