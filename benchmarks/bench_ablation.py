"""Ablations of FullRepair's design choices (DESIGN.md §4).

Three questions the paper's design raises but does not isolate:

1. **Multi-pipeline vs best single pipeline** — how much of FullRepair's
   gain comes from running many pipelines (vs just picking the best
   single tree, i.e. PivotRepair)?
2. **Requester own-task** — how much throughput does assigning leftover
   budget to the requester's direct pipeline recover on clusters whose
   helper downlinks saturate?
3. **Greedy vs flow-completed scheduling** — how often does the paper's
   greedy need the max-flow completion (generalised task exchange), and
   at what throughput cost would a greedy-only scheduler run?
"""

import numpy as np
import pytest

from benchmarks.common import SEED, write_report
from repro.core import FullRepair, max_pipelined_throughput, schedule_tasks
from repro.net import BandwidthSnapshot, RepairContext
from repro.repair import PivotRepair
from repro.workloads import make_trace
from repro.analysis import sample_contexts


def _contexts(num=40):
    trace = make_trace("swim", num_nodes=16, num_snapshots=1200, seed=SEED)
    return sample_contexts(trace, 14, 10, num, seed=SEED + 7)


def test_ablation_multi_vs_single_pipeline(benchmark):
    """Aggregate throughput: FullRepair vs the best single tree."""
    ctxs = _contexts()

    def run():
        gains = []
        fr, pv = FullRepair(), PivotRepair()
        for ctx in ctxs:
            try:
                multi = fr.schedule(ctx).total_rate
                single = pv.schedule(ctx).total_rate
            except ValueError:
                continue
            gains.append(multi / single)
        return gains

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Ablation 1 - multi-pipeline throughput gain over best single tree\n"
        f"  instances: {len(gains)}\n"
        f"  mean gain: {np.mean(gains):.2f}x\n"
        f"  median:    {np.median(gains):.2f}x\n"
        f"  p90:       {np.quantile(gains, 0.9):.2f}x\n"
        f"  min:       {np.min(gains):.2f}x (never below 1: optimality)"
    )
    write_report("ablation_multi_vs_single", text)
    assert min(gains) >= 1.0 - 1e-9
    assert np.mean(gains) > 1.1  # the headroom Table I motivates


def test_ablation_requester_own_task(benchmark):
    """Leftover throughput routed to the requester's direct pipeline,
    measured by actually scheduling with the feature disabled."""
    rng = np.random.default_rng(SEED)

    def run():
        with_r, without_r = [], []
        fr = FullRepair()
        fr_ablated = FullRepair(use_requester_task=False)
        for _ in range(60):
            # thin helper downlinks force leftover throughput
            n = 10
            up = rng.uniform(300, 1000, n)
            down = rng.uniform(30, 220, n)
            down[0] = 1000.0  # requester
            snap = BandwidthSnapshot(uplink=up, downlink=down)
            ctx = RepairContext(
                snapshot=snap, requester=0, helpers=tuple(range(1, n)), k=4
            )
            plan = fr.schedule(ctx)
            if plan.meta["requester_task_rate"] <= 0:
                continue
            ablated = fr_ablated.schedule(ctx)
            ablated.validate()
            with_r.append(plan.total_rate)
            without_r.append(ablated.total_rate)
        return with_r, without_r

    with_r, without_r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_r, "no instance produced a requester task"
    gain = np.mean(np.array(with_r) / np.array(without_r))
    text = (
        "Ablation 2 - requester own-task contribution\n"
        f"  instances with leftover throughput: {len(with_r)}/60\n"
        f"  mean throughput gain from the requester pipeline: {gain:.2f}x"
    )
    write_report("ablation_requester_task", text)
    assert gain > 1.0


def test_ablation_greedy_vs_flow(benchmark):
    """How often the greedy alone schedules t_max without the max-flow
    completion, across congested 16-node instances."""
    ctxs = _contexts(60)

    def run():
        flow_needed = 0
        total = 0
        for ctx in ctxs:
            try:
                result = schedule_tasks(ctx, max_pipelined_throughput(ctx))
            except ValueError:
                continue
            total += 1
            flow_needed += result.flow_completion_used
        return flow_needed, total

    flow_needed, total = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Ablation 3 - greedy vs max-flow completion\n"
        f"  instances: {total}\n"
        f"  greedy alone sufficient: {total - flow_needed} "
        f"({100 * (total - flow_needed) / max(total, 1):.1f}%)\n"
        f"  flow completion engaged: {flow_needed}\n"
        "  (the completion never changes t_max - it only finishes the\n"
        "   sender fill the paper's pairwise task exchange would)"
    )
    write_report("ablation_greedy_vs_flow", text)
    assert total > 30
