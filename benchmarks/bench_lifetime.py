"""Fleet-lifetime durability harness (``BENCH_lifetime.json``).

Three scored sections, one committed artefact:

**Gate campaign** — a fixed-seed (14, 10) campaign pushing one million
stripe-years (200k stripes x 5 simulated years) through the real
recovery orchestrator under accelerated aging.  Scored on throughput
(stripe-years simulated per wall-second) and, because every draw comes
from named seeded streams, on *exact* reproducibility: the loss-event
count, stripes lost, and event total must match the committed artefact
bit-for-bit.  A one-count drift means a stream moved — the determinism
contract the whole subsystem is built on.

**Markov cross-check** — a Monte-Carlo run in the ``process`` repair
regime (independent exponential per-chunk rebuild clocks), whose MTTDL
must bracket the closed-form birth-death-chain answer from
:func:`repro.lifetime.analytic.markov_mttdl` inside the simulated
confidence interval.  This pins the simulator to theory where theory
exists, so its answers can be trusted where theory doesn't reach.

**Repair-speed sweep** — the durability headline: the same fleet with
pipelined repair cost (factor 1, FullRepair) versus conventional
serial rebuild cost (factor 10 ~ k), showing losses and durability
nines responding to the repair-speed knob.

Run ``python -m benchmarks.bench_lifetime`` to regenerate the
committed artefact; ``tests/test_bench_lifetime.py`` re-runs the gate
tier on every tier-1 run.
"""

from __future__ import annotations

import sys
import time

from repro.lifetime import (
    ExponentialProcess,
    LifetimeConfig,
    RepairModel,
    SECONDS_PER_YEAR,
    markov_mttdl,
    run_campaign,
    run_monte_carlo,
    sweep_repair_speed,
)

from .common import write_json_report

SCHEMA_VERSION = 1

#: The fixed-seed gate campaign: one million stripe-years against the
#: real orchestrator.  These numbers are part of the artefact contract.
GATE_CONFIG = LifetimeConfig(
    n=14,
    k=10,
    num_stripes=200_000,
    placement_groups=128,
    years=5.0,
    seed=2023,
    disk_process=ExponentialProcess.from_years(0.25, mttr_hours=12.0),
    machine_process=ExponentialProcess.from_years(0.5, mttr_hours=4.0),
    repair_model=RepairModel(chunk_mib=16.0, node_mbps=600.0),
    budget_fraction=0.3,
    max_concurrent=8,
    tick_s=900.0,
)

#: Committed gate outcome — exact-match reproducibility contract.
GATE_EXPECTED = {"losses": 5, "stripes_lost": 7814, "events": 79619}

#: Throughput floor, stripe-years per wall-second (observed ~300k).
GATE_MIN_STRIPE_YEARS_PER_S = 20_000.0

#: Markov cross-check: a (3, 2) fleet on disjoint placements in the
#: ``process`` regime, where the simulator IS the birth-death chain.
CROSSCHECK_GROUPS = 200
CROSSCHECK_MTTF_S = 2000.0
CROSSCHECK_MTTR_S = 150.0
CROSSCHECK_HORIZON_S = 30_000.0
CROSSCHECK_CONFIG = LifetimeConfig(
    n=3,
    k=2,
    num_stripes=CROSSCHECK_GROUPS,
    placement_groups=CROSSCHECK_GROUPS,
    years=CROSSCHECK_HORIZON_S / SECONDS_PER_YEAR,
    seed=11,
    dcs=1,
    racks_per_dc=1,
    machines_per_rack=1,
    disks_per_machine=3 * CROSSCHECK_GROUPS,
    spread_level="disk",
    patterns=tuple(
        tuple(range(g * 3, (g + 1) * 3)) for g in range(CROSSCHECK_GROUPS)
    ),
    disk_process=ExponentialProcess(
        mttf_s=CROSSCHECK_MTTF_S, mttr_s=CROSSCHECK_MTTR_S
    ),
    repair="process",
)

#: Repair-speed sweep fleet (small enough for the committed artefact).
SWEEP_CONFIG = LifetimeConfig(
    n=14,
    k=10,
    num_stripes=10_000,
    placement_groups=32,
    years=1.5,
    seed=2023,
    disk_process=ExponentialProcess.from_years(0.12, mttr_hours=12.0),
    machine_process=ExponentialProcess.from_years(0.5, mttr_hours=4.0),
    repair_model=RepairModel(chunk_mib=16.0, node_mbps=400.0),
    budget_fraction=0.3,
)
SWEEP_FACTORS = (1.0, 10.0)


def run_gate() -> dict:
    """The fixed-seed million-stripe-year campaign, scored."""
    start = time.perf_counter()
    result = run_campaign(GATE_CONFIG)
    wall_s = time.perf_counter() - start
    row = {
        "losses": len(result.loss_events),
        "stripes_lost": result.stripes_lost,
        "events": result.events_executed,
        "stripe_years": result.stripe_years,
        "chunks_destroyed": result.chunks_destroyed,
        "chunks_rebuilt": result.chunks_rebuilt,
        "repairs_dispatched": result.repairs_dispatched,
        "dead_letters": result.dead_letters,
        "peak_pending": result.peak_pending,
        "wall_s": round(wall_s, 3),
        "stripe_years_per_s": round(result.stripe_years / wall_s, 1),
    }
    row["matches_expected"] = all(
        row[key] == value for key, value in GATE_EXPECTED.items()
    )
    return row


def run_crosscheck(trials: int = 6, confidence: float = 0.99) -> dict:
    """Simulated MTTDL must bracket the closed-form Markov answer."""
    mc = run_monte_carlo(
        CROSSCHECK_CONFIG, trials=trials, confidence=confidence
    )
    analytic_s = markov_mttdl(
        CROSSCHECK_CONFIG.n,
        CROSSCHECK_CONFIG.k,
        1.0 / CROSSCHECK_MTTF_S,
        1.0 / CROSSCHECK_MTTR_S,
        repairs="independent",
    )
    sim_s = mc.mttdl_years * SECONDS_PER_YEAR
    lo_s = mc.mttdl_ci_years[0] * SECONDS_PER_YEAR
    hi_s = mc.mttdl_ci_years[1] * SECONDS_PER_YEAR
    return {
        "trials": trials,
        "confidence": confidence,
        "loss_events": mc.loss_events,
        "sim_mttdl_s": round(sim_s, 1),
        "sim_ci_s": [round(lo_s, 1), round(hi_s, 1)],
        "analytic_mttdl_s": round(analytic_s, 1),
        "analytic_within_ci": bool(lo_s <= analytic_s <= hi_s),
    }


def run_sweep(trials: int = 2) -> dict:
    """Durability nines versus the repair-speed knob."""
    rows = {}
    for factor, mc in sweep_repair_speed(
        SWEEP_CONFIG, SWEEP_FACTORS, trials=trials
    ):
        rows[f"pipeline_{factor:g}"] = {
            "losses": mc.loss_events,
            "stripes_lost": mc.stripes_lost,
            "mttdl_lower_years": round(mc.mttdl_ci_years[0], 2),
            "nines_lower": round(mc.nines_ci[0], 3),
        }
    pipelined = rows[f"pipeline_{SWEEP_FACTORS[0]:g}"]
    serial = rows[f"pipeline_{SWEEP_FACTORS[-1]:g}"]
    rows["pipelining_reduces_losses"] = bool(
        pipelined["losses"] < serial["losses"]
    )
    return rows


def _jsonable_cfg(cfg: LifetimeConfig) -> dict:
    return {
        "n": cfg.n,
        "k": cfg.k,
        "num_stripes": cfg.num_stripes,
        "placement_groups": cfg.placement_groups,
        "years": cfg.years,
        "seed": cfg.seed,
        "disk_mttf_s": cfg.disk_process.mttf_s,
        "repair": cfg.repair,
    }


def run(smoke: bool = False, out_path=None) -> dict:
    """Run the harness; returns (and writes) the report dict."""
    report = {
        "benchmark": "lifetime",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "smoke": smoke,
            "gate": _jsonable_cfg(GATE_CONFIG),
            "gate_expected": dict(GATE_EXPECTED),
            "sweep_factors": list(SWEEP_FACTORS),
        },
        "gate": run_gate(),
        "crosscheck": run_crosscheck(),
        "sweep": run_sweep(),
    }
    write_json_report("lifetime", report, path=out_path)
    return report


def main() -> int:
    report = run(smoke="--smoke" in sys.argv)
    ok = (
        report["gate"]["matches_expected"]
        and report["crosscheck"]["analytic_within_ci"]
        and report["sweep"]["pipelining_reduces_losses"]
    )
    print(
        "lifetime bench: gate "
        f"{'MATCHES' if report['gate']['matches_expected'] else 'DRIFTED'}, "
        f"{report['gate']['stripe_years_per_s']:,.0f} stripe-years/s; "
        "crosscheck "
        f"{'OK' if report['crosscheck']['analytic_within_ci'] else 'OUT OF CI'}; "
        "sweep "
        f"{'OK' if report['sweep']['pipelining_reduces_losses'] else 'FLAT'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
