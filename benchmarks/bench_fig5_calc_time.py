"""Figure 5 (Experiment 2) — scheduling calculation time.

Benchmarks the plan-construction call of each algorithm on a fixed
congested repair instance per (n, k).  This is the one experiment where
wall-clock is the measured quantity, so pytest-benchmark's statistics
are the artefact itself.

Expected shape (paper Fig. 5): PPT orders of magnitude above everyone
(brute-force tree emulation, growing steeply with n); RP growing with n
(combinatorial subset search, us -> ms); PivotRepair and FullRepair flat
at ~10-100 us with FullRepair slightly above PivotRepair (O(n^2) vs
O(n log n)).  Absolute numbers are Python-inflated vs the paper's C++,
but the ordering and growth shapes are the reproduction target.
"""

import pytest

from benchmarks.common import CODES, PPT_BUDGET, SEED, write_report
from repro.analysis import make_fixed_context
from repro.repair import get_algorithm

_TIMES: dict[tuple[str, int, int], float] = {}

ALGORITHMS = ("rp", "ppt", "pivotrepair", "fullrepair")


@pytest.mark.parametrize("nk", CODES, ids=lambda nk: f"n{nk[0]}k{nk[1]}")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_calc_time(benchmark, algorithm, nk):
    n, k = nk
    ctx = make_fixed_context(n, k, seed=SEED)
    kwargs = {"max_emulations": PPT_BUDGET} if algorithm == "ppt" else {}
    algo = get_algorithm(algorithm, **kwargs)
    plan = benchmark(algo.schedule, ctx)
    plan.validate()
    _TIMES[(algorithm, n, k)] = benchmark.stats.stats.mean
    benchmark.extra_info["total_rate_mbps"] = plan.total_rate


def test_fig5_report(benchmark):
    assert _TIMES, "run the calc-time benches first"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Figure 5 - scheduling calculation time (mean seconds)"]
    header = f"{'(n,k)':>10} | " + " | ".join(f"{a:>12}" for a in ALGORITHMS)
    lines += [header, "-" * len(header)]
    for n, k in CODES:
        cells = []
        for a in ALGORITHMS:
            t = _TIMES.get((a, n, k))
            cells.append(f"{t * 1e6:10.1f}us" if t is not None else " " * 12)
        lines.append(f"{f'({n},{k})':>10} | " + " | ".join(cells))
    write_report("fig5_calc_time", "\n".join(lines))
    # shape assertions: PPT dominates everyone at the largest n; RP grows
    big = CODES[-1]
    small = CODES[0]
    assert _TIMES[("ppt", *big)] > _TIMES[("rp", *big)]
    assert _TIMES[("ppt", *big)] > _TIMES[("fullrepair", *big)]
    assert _TIMES[("rp", *big)] > _TIMES[("rp", *small)]
