"""Figure 4 (Experiment 1) — overall single-chunk repair time.

For every workload and every (n, k) in {(6,4), (9,6), (12,8), (14,10)},
repairs a 64 MiB chunk under sampled congested bandwidth snapshots with
RP, PPT, PivotRepair and FullRepair, reporting mean overall repair time
(scheduling calculation + data transfer).

Expected shape (paper Fig. 4): FullRepair lowest everywhere; reductions
up to ~45% vs RP, larger vs PPT at big n (PPT's calculation time), and
up to ~33% vs PivotRepair.
"""

import pytest

from benchmarks.common import (
    ALGO_KWARGS,
    CODES,
    NUM_SAMPLES,
    NUM_SNAPSHOTS,
    SEED,
    WORKLOADS,
    write_report,
)
from repro.analysis import (
    render_comparison,
    render_reductions,
    repair_time_experiment,
)

_RESULTS = []


@pytest.mark.parametrize("workload", WORKLOADS)
def test_fig4_overall_repair_time(benchmark, workload):
    def run():
        return [
            repair_time_experiment(
                workload=workload,
                n=n,
                k=k,
                num_samples=NUM_SAMPLES,
                num_snapshots=NUM_SNAPSHOTS,
                seed=SEED,
                algorithm_kwargs=ALGO_KWARGS,
            )
            for n, k in CODES
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.extend(results)
    for r in results:
        # FullRepair's mean overall time never loses to the baselines
        for base in ("rp", "ppt", "pivotrepair"):
            assert r.mean_overall("fullrepair") <= r.mean_overall(base) * 1.02, (
                workload, r.n, r.k, base,
            )


def test_fig4_report(benchmark):
    """Render the pooled Figure-4 table after all workloads ran."""
    assert _RESULTS, "run the per-workload benches first"

    def render():
        return (
            render_comparison(_RESULTS, metric="overall")
            + "\n\n"
            + render_reductions(_RESULTS, metric="overall")
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    write_report("fig4_overall_repair_time", text)
