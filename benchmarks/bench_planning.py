"""Planning fast-path perf harness — machine-readable regression gate.

Times the control-plane hot path end to end and writes
``BENCH_planning.json`` at the repository root:

* per-algorithm, per-(n, k) plan-construction latency (median / p99 /
  mean over individually-timed rounds), including ``fullrepair_seed`` —
  the frozen pre-optimisation reference planner kept in
  :mod:`repro.core.seedplanner` — so the fast path's speedup is measured
  against a live baseline rather than a stale number;
* plan-cache behaviour: hit rate over a jittered-bandwidth request
  stream, hit/miss latency, and the resulting speedup;
* GF(2^8) data-plane kernel throughput (``gf256.dot`` and
  ``matrix.matvec_chunks`` with preallocated ``out=`` buffers), in MB/s.

Run directly (``python -m benchmarks.bench_planning``), or with
``--smoke`` for a sub-30-second pass used by the test suite to validate
the report schema.  Unlike the ``bench_fig*`` modules this one is a
plain script, not a pytest-benchmark suite: its artefact is the JSON.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from time import perf_counter

import numpy as np

from benchmarks.common import CODES, REPO_ROOT, SEED, quantile, write_json_report
from repro.analysis import make_fixed_context
from repro.core.plancache import PlanCache
from repro.core.seedplanner import seed_plan
from repro.ec import gf256, matrix
from repro.net.bandwidth import BandwidthSnapshot, RepairContext
from repro.repair import get_algorithm

SCHEMA_VERSION = 1

#: Algorithms timed per code.  ``fullrepair_seed`` is handled specially
#: (it is the frozen reference implementation, not a registry entry).
ALGORITHMS = ("fullrepair", "fullrepair_seed", "pivotrepair", "rp")


def _time_rounds(fn, contexts, rounds: int) -> list[float]:
    """Per-call wall times (seconds) of ``fn`` cycling over ``contexts``."""
    fn(contexts[0])  # warm up: table builds, registry imports, JIT-less but fair
    samples = []
    for i in range(rounds):
        ctx = contexts[i % len(contexts)]
        start = perf_counter()
        fn(ctx)
        samples.append(perf_counter() - start)
    return samples


def _stats_us(samples: list[float]) -> dict:
    return {
        "median_us": quantile(samples, 0.5) * 1e6,
        "p99_us": quantile(samples, 0.99) * 1e6,
        "mean_us": sum(samples) / len(samples) * 1e6,
        "rounds": len(samples),
    }


def _bench_planning(codes, rounds: int, num_contexts: int) -> dict:
    out: dict[str, dict] = {}
    for n, k in codes:
        contexts = [
            make_fixed_context(n, k, seed=SEED + i) for i in range(num_contexts)
        ]
        cell: dict[str, dict] = {}
        for name in ALGORITHMS:
            if name == "fullrepair_seed":
                fn = seed_plan
            else:
                algo = get_algorithm(name)
                fn = algo.plan
            cell[name] = _stats_us(_time_rounds(fn, contexts, rounds))
        cell["fullrepair_speedup_vs_seed"] = (
            cell["fullrepair_seed"]["median_us"] / cell["fullrepair"]["median_us"]
        )
        out[f"n{n}_k{k}"] = cell
    return out


def _bench_plan_cache(rounds: int) -> dict:
    """Hit rate + latency over a jittered steady-state request stream.

    Models the master's steady state: bandwidth reports wobble well
    below the cache quantum between repair requests, so after the first
    request every lookup hits.
    """
    n, k = 14, 10
    base = make_fixed_context(n, k, seed=SEED)
    cache = PlanCache(max_entries=64)
    algo = get_algorithm("fullrepair")
    # bucket-aligned base so sub-quantum jitter stays inside one bucket
    up0 = np.floor(base.snapshot.uplink)
    down0 = np.floor(base.snapshot.downlink)
    rng = np.random.default_rng(SEED)
    hit_times, miss_times = [], []
    for i in range(rounds):
        jitter_up = rng.uniform(0.0, 0.99, up0.shape)
        jitter_down = rng.uniform(0.0, 0.99, down0.shape)
        ctx = RepairContext(
            snapshot=BandwidthSnapshot(up0 + jitter_up, down0 + jitter_down),
            requester=base.requester,
            helpers=base.helpers,
            k=base.k,
            chunk_index=dict(base.chunk_index),
        )
        start = perf_counter()
        plan = cache.get_or_compute(algo, ctx)
        elapsed = perf_counter() - start
        (hit_times if plan.meta["plan_cache"] == "hit" else miss_times).append(elapsed)
    result = {
        "lookups": cache.stats.lookups,
        "hit_rate": cache.stats.hit_rate,
        "hit_median_us": quantile(hit_times, 0.5) * 1e6 if hit_times else None,
        "miss_median_us": quantile(miss_times, 0.5) * 1e6 if miss_times else None,
    }
    if hit_times and miss_times:
        result["hit_speedup_vs_miss"] = (
            result["miss_median_us"] / result["hit_median_us"]
        )
    return result


def _bench_gf_kernels(chunk_bytes: int, rounds: int) -> dict:
    k = 10
    rng = np.random.default_rng(SEED)
    chunks = rng.integers(0, 256, size=(k, chunk_bytes), dtype=np.uint8)
    coeffs = [int(c) for c in rng.integers(1, 256, size=k)]
    mat = np.asarray(
        rng.integers(0, 256, size=(4, k)), dtype=np.uint8
    )

    dot_out = np.empty(chunk_bytes, dtype=np.uint8)
    dot_times = []
    for _ in range(rounds):
        start = perf_counter()
        gf256.dot(coeffs, chunks, out=dot_out)
        dot_times.append(perf_counter() - start)

    mv_out = np.empty((4, chunk_bytes), dtype=np.uint8)
    mv_times = []
    for _ in range(rounds):
        start = perf_counter()
        matrix.matvec_chunks(mat, chunks, out=mv_out)
        mv_times.append(perf_counter() - start)

    mb = chunk_bytes / 1e6
    return {
        "chunk_bytes": chunk_bytes,
        "num_chunks": k,
        # input bytes combined per second (the paper's GF throughput unit)
        "dot_mb_per_s": k * mb / quantile(dot_times, 0.5),
        "matvec_mb_per_s": mat.shape[0] * k * mb / quantile(mv_times, 0.5),
    }


def run(smoke: bool = False, out_path=None) -> dict:
    """Execute the harness and write ``BENCH_planning.json``; returns it.

    ``out_path`` overrides the default repo-root location (used by the
    schema test so a smoke pass never overwrites the full-run artefact).
    """
    if smoke:
        codes = ((6, 4), (14, 10))
        rounds, num_contexts = 40, 4
        cache_rounds = 60
        chunk_bytes, gf_rounds = 256 * 1024, 10
    else:
        codes = CODES
        rounds, num_contexts = 300, 8
        cache_rounds = 400
        chunk_bytes, gf_rounds = 4 * 1024 * 1024, 25
    report = {
        "benchmark": "planning",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "smoke": smoke,
            "seed": SEED,
            "rounds": rounds,
            "contexts_per_code": num_contexts,
        },
        "planning": _bench_planning(codes, rounds, num_contexts),
        "plan_cache": _bench_plan_cache(cache_rounds),
        "gf_kernels": _bench_gf_kernels(chunk_bytes, gf_rounds),
    }
    path = write_json_report("planning", report, path=out_path)
    print(f"wrote {path}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast (<30 s) pass with reduced rounds; same report schema",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="report path (default: BENCH_planning.json at the repo root; "
        "smoke runs default to BENCH_planning.smoke.json so they never "
        "overwrite the committed full-run artefact)",
    )
    args = parser.parse_args(argv)
    out_path = args.out
    if out_path is None and args.smoke:
        out_path = REPO_ROOT / "BENCH_planning.smoke.json"
    report = run(smoke=args.smoke, out_path=out_path)
    for code, cell in report["planning"].items():
        print(
            f"{code}: fullrepair {cell['fullrepair']['median_us']:.1f} us median, "
            f"seed {cell['fullrepair_seed']['median_us']:.1f} us, "
            f"speedup {cell['fullrepair_speedup_vs_seed']:.2f}x"
        )
    cache = report["plan_cache"]
    print(
        f"plan cache: hit rate {cache['hit_rate']:.3f}, "
        f"hit {cache['hit_median_us']:.1f} us vs miss {cache['miss_median_us']:.1f} us"
    )
    gf = report["gf_kernels"]
    print(
        f"gf kernels: dot {gf['dot_mb_per_s']:.0f} MB/s, "
        f"matvec {gf['matvec_mb_per_s']:.0f} MB/s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
