"""Engine-scale benchmark: events/sec at million-event recovery scale.

The ROADMAP's fleet-lifetime campaigns need the event engine to
sustain millions of events per run, so this harness measures the
engine the way those campaigns will use it: a large orchestrated
recovery (node kills under foreground load, SLO-coupled throttle)
driven entirely through ``run_recovery_scenario`` with small slices,
so per-event dispatch — not erasure-coding arithmetic — dominates.

Three tiers of measurement land in ``BENCH_sim.json``:

* ``gate`` — a smoke-scale scenario timed with the profiler *disabled*
  (best of ``GATE_PASSES`` setup-subtracted passes, GC off).  The
  tier-1 test compares a fresh measurement against the committed
  number and fails on a >20% events/sec regression.  The section also
  carries the disabled-profiler overhead bound: the hooks are checked
  once per ``run()`` call (never per event), so the implied overhead —
  measured empty-``run()`` dispatch cost x run calls over the pass
  wall — must stay <=3%, same contract as ``BENCH_obs.json``.
* ``profiled`` — the same scenario with the :class:`EngineProfiler`
  and :class:`RunMonitor` attached: events/sec under profiling, the
  hot action sites, and the heartbeat/flamegraph artefacts
  (``benchmarks/out/sim_engine.speedscope.json`` etc.).
* ``million_event`` (full runs only) — the ~1M-event campaign itself,
  disabled and profiled, proving the scale target end to end.

``optimization`` records the profiler-driven fix this harness paid for
on its first outing (see ``OPTIMIZATION_RECORD``).

Run directly (``python -m benchmarks.bench_sim_engine``), or with
``--smoke`` for the fast schema/gate tier used by the tests.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
from time import perf_counter

from benchmarks.common import OUT_DIR, REPO_ROOT, SEED, write_json_report

from repro.net import units
from repro.obs import collapsed_stacks, speedscope_json
from repro.recovery import run_recovery_scenario
from repro.sim.events import EventQueue

SCHEMA_VERSION = 1

#: Ceiling for the *disabled* profiler/monitor overhead (percent of the
#: gate pass wall), mirroring the ``BENCH_obs.json`` no-op contract.
MAX_DISABLED_OVERHEAD_PERCENT = 3.0

#: Disabled gate passes; the gate statistic is the *best* pass, which a
#: genuine code regression shifts down with the rest while transient
#: host noise (CI neighbours, thermal throttling) cannot inflate.
GATE_PASSES = 5

#: Smoke-scale scenario: ~20k events in ~2s.  Both the committed
#: artefact and the tier-1 test measure THIS protocol, so the
#: comparison is like-for-like.
GATE_SCENARIO = dict(
    num_stripes=48,
    chunk_bytes=64 * units.KIB,
    slice_bytes=4 * units.KIB,
    foreground_reads=200,
    kills=((0, 0.001), (3, 0.004)),
    seed=SEED,
)

#: Full-scale campaign: ~1.05M events (calibrated at ~2.5k engine
#: events per 128-slice stripe across the repair pipeline + foreground).
MILLION_SCENARIO = dict(
    num_stripes=420,
    chunk_bytes=128 * units.KIB,
    slice_bytes=1 * units.KIB,
    foreground_reads=400,
    kills=((0, 0.001), (3, 0.004)),
    seed=SEED,
)

#: The first profiler-driven engine optimization, measured on the gate
#: protocol (disabled median of 3 / profiled tick cost) before and
#: after the change on the same host.  The profiled gate run surfaced
#: ``RecoveryOrchestrator._tick`` as the dominant control-plane site at
#: 1.68 ms/call: every SLO evaluation re-merged the fleet rolling
#: window three times per rule (count + quantile + mean round-trips),
#: and ``_publish_gauges`` re-resolved five registry handles per tick.
#: Fix: revision-keyed merged-digest cache on ``RollingWindow``, a
#: single shared ``window_digest`` per SLO measurement, and cached
#: gauge handles.  ``after.tick_mean_us_this_run`` is re-measured live
#: by every full run so drift in the claim is visible in the diff.
OPTIMIZATION_RECORD = {
    "name": "slo-window-digest-cache",
    "surfaced_by": "profiled gate run: RecoveryOrchestrator._tick #2 site",
    "change": (
        "RollingWindow merged-digest cache (rev+epoch keyed) + "
        "SLOEngine._measure single window_digest + orchestrator gauge-"
        "handle caching"
    ),
    # measured pre-harness with GC left on, so before/after compare to
    # each other — not to gate.events_per_s, which disables GC
    "protocol": "gate scenario; disabled median of 3 (GC on), profiled tick cost",
    "before": {
        "disabled_events_per_s_median": 13013.0,
        "tick_mean_us": 1678.6,
        "tick_total_ms": 335.7,
        "tick_calls": 200,
    },
    "after": {
        "disabled_events_per_s_median": 13940.0,
        "tick_mean_us": 278.8,
        "tick_total_ms": 55.8,
        "tick_calls": 200,
    },
    "tick_speedup": 6.0,
}


def _setup_wall(cfg: dict) -> tuple[int, float]:
    """(events, wall) of a run stopped almost immediately.

    ``run_recovery_scenario`` builds the cluster and writes every
    stripe (EC encodes, digests) before the engine runs; subtracting
    this setup-only pass isolates the engine's own events/sec.
    """
    t0 = perf_counter()
    scenario = run_recovery_scenario(**cfg, until=5e-4)
    return scenario.system.events.executed, perf_counter() - t0


def _disabled_passes(cfg: dict, passes: int) -> dict:
    """Setup-subtracted disabled-engine passes (GC off while timed)."""
    null_events, null_wall = _setup_wall(cfg)
    rates, walls, events = [], [], 0
    for _ in range(passes):
        gc.collect()
        gc.disable()
        try:
            t0 = perf_counter()
            scenario = run_recovery_scenario(**cfg)
            wall = perf_counter() - t0
        finally:
            gc.enable()
        events = scenario.system.events.executed
        engine_wall = max(wall - null_wall, 1e-9)
        walls.append(engine_wall)
        rates.append((events - null_events) / engine_wall)
    report = scenario.report
    return {
        "events": events,
        "sim_seconds": scenario.system.events.now,
        "repaired": report.repaired,
        "peak_pending": scenario.system.events.peak_pending,
        "setup_wall_s": null_wall,
        "engine_wall_s": statistics.median(walls),
        "passes_events_per_s": [round(r, 1) for r in rates],
        "events_per_s": round(max(rates), 1),
        "events_per_s_median": round(statistics.median(rates), 1),
    }


def _empty_run_dispatch_ns(iterations: int = 20_000) -> float:
    """Cost of one ``run()`` call on an empty queue.

    An upper bound on what the self-observability hooks add to a
    disabled run: the hook check, budget sampling and try/finally all
    live at ``run()`` entry/exit (the per-event compare existed before
    the hooks), so the whole empty-call cost bounds the added share.
    """
    q = EventQueue()
    run = q.run
    t0 = perf_counter()
    for _ in range(iterations):
        run()
    return (perf_counter() - t0) / iterations * 1e9


def _disabled_overhead(gate: dict) -> dict:
    dispatch_ns = _empty_run_dispatch_ns()
    # the scenario drives everything through one events.run() call
    run_calls = 1
    wall_ns = gate["engine_wall_s"] * 1e9
    implied = dispatch_ns * run_calls / wall_ns * 100.0
    return {
        "empty_run_dispatch_ns": round(dispatch_ns, 1),
        "run_calls_per_scenario": run_calls,
        "per_event_added_cost": "none (hooks checked once per run call)",
        "implied_overhead_percent": implied,
        "max_overhead_percent": MAX_DISABLED_OVERHEAD_PERCENT,
        "pass": implied <= MAX_DISABLED_OVERHEAD_PERCENT,
    }


def _profiled_pass(cfg: dict, *, heartbeat_s: float,
                   artefact_prefix: str | None) -> dict:
    """One profiled+monitored pass; optionally writes the artefacts."""
    scenario = run_recovery_scenario(
        **cfg, profile=True, heartbeat_s=heartbeat_s
    )
    profiler, monitor = scenario.profiler, scenario.monitor
    wall_s = profiler.run_wall_ns / 1e9
    out = {
        "events": profiler.events,
        "engine_wall_s": wall_s,
        "events_per_s": round(profiler.events / wall_s, 1) if wall_s else 0.0,
        "mean_batch_size": round(profiler.mean_batch_size, 2),
        "heartbeats": len(monitor.heartbeats),
        "hot_sites": [s.to_dict() for s in profiler.hot_sites(5)],
        "fanout": {
            hook: sum(hist.values())
            for hook, hist in sorted(profiler.fanout.items())
        },
    }
    if artefact_prefix is not None:
        OUT_DIR.mkdir(exist_ok=True)
        speedscope_path = OUT_DIR / f"{artefact_prefix}.speedscope.json"
        speedscope_path.write_text(
            json.dumps(speedscope_json(profiler, name=artefact_prefix),
                       sort_keys=True) + "\n"
        )
        (OUT_DIR / f"{artefact_prefix}.collapsed.txt").write_text(
            collapsed_stacks(profiler)
        )
        (OUT_DIR / f"{artefact_prefix}_heartbeats.jsonl").write_text(
            monitor.heartbeats_jsonl()
        )
        out["artefacts"] = [
            str(speedscope_path.relative_to(REPO_ROOT)),
            str((OUT_DIR / f"{artefact_prefix}.collapsed.txt")
                .relative_to(REPO_ROOT)),
            str((OUT_DIR / f"{artefact_prefix}_heartbeats.jsonl")
                .relative_to(REPO_ROOT)),
        ]
    return out


def run(smoke: bool = False, out_path=None) -> dict:
    """Run the harness; returns (and writes) the report dict."""
    gate = _disabled_passes(GATE_SCENARIO, GATE_PASSES)
    gate["disabled_overhead"] = _disabled_overhead(gate)
    profiled = _profiled_pass(
        GATE_SCENARIO, heartbeat_s=0.2, artefact_prefix="sim_engine"
    )
    profiled["vs_disabled"] = (
        round(profiled["events_per_s"] / gate["events_per_s_median"], 3)
        if gate["events_per_s_median"]
        else 0.0
    )

    optimization = json.loads(json.dumps(OPTIMIZATION_RECORD))
    tick = [
        s for s in profiled["hot_sites"]
        if s["site"].endswith("RecoveryOrchestrator._tick")
    ]
    if tick:
        optimization["after"]["tick_mean_us_this_run"] = round(
            tick[0]["mean_us"], 1
        )

    report = {
        "benchmark": "sim",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "smoke": smoke,
            "seed": SEED,
            "gate_passes": GATE_PASSES,
            "gate_scenario": _jsonable_cfg(GATE_SCENARIO),
            "million_scenario": _jsonable_cfg(MILLION_SCENARIO),
        },
        "gate": gate,
        "profiled": profiled,
        "optimization": optimization,
    }

    if not smoke:
        disabled = _disabled_passes(MILLION_SCENARIO, passes=1)
        big = _profiled_pass(
            MILLION_SCENARIO, heartbeat_s=1.0,
            artefact_prefix="sim_engine_million",
        )
        big["vs_disabled"] = (
            round(big["events_per_s"] / disabled["events_per_s"], 3)
            if disabled["events_per_s"]
            else 0.0
        )
        report["million_event"] = {"disabled": disabled, "profiled": big}

    path = write_json_report("sim", report, path=out_path)
    print(f"report written to {path}")
    return report


def _jsonable_cfg(cfg: dict) -> dict:
    return {
        k: list(map(list, v)) if isinstance(v, tuple) else v
        for k, v in cfg.items()
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast schema/gate tier; writes BENCH_sim.smoke.json so the "
             "full-run artefact survives",
    )
    args = parser.parse_args(argv)
    out_path = REPO_ROOT / "BENCH_sim.smoke.json" if args.smoke else None
    report = run(smoke=args.smoke, out_path=out_path)
    ok = report["gate"]["disabled_overhead"]["pass"]
    if not smoke_scale_sane(report):
        ok = False
    print(
        f"gate: {report['gate']['events_per_s']:.0f} events/s best "
        f"({report['gate']['events_per_s_median']:.0f} median), "
        f"disabled overhead "
        f"{report['gate']['disabled_overhead']['implied_overhead_percent']:.2g}% "
        f"(ceiling {MAX_DISABLED_OVERHEAD_PERCENT:.0f}%) "
        f"-> {'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def smoke_scale_sane(report: dict) -> bool:
    """Loose structural sanity the harness itself asserts on every run."""
    gate = report["gate"]
    if gate["events"] < 10_000:
        return False
    if report["profiled"]["events"] < 10_000:
        return False
    million = report.get("million_event")
    if million is not None and million["disabled"]["events"] < 900_000:
        return False
    return True


if __name__ == "__main__":
    sys.exit(main())
