"""Observability no-op overhead harness — the ``BENCH_obs.json`` gate.

The repair path is permanently instrumented (``repro.obs``): every
repair, planning request, and slice transfer makes calls against a
tracer and a metrics registry that default to process-wide no-op
singletons.  This harness bounds what that costs when observability is
*off* — the configuration every benchmark and production-style run uses:

1. ``null_primitives`` — per-call wall cost of each no-op primitive
   (``NULL_TRACER.event``, a start/end span pair, a
   ``NULL_METRICS.counter(...).inc()`` factory+inc round trip, a
   ``NULL_FLEET.observe`` fleet-aggregation point);
2. ``instrumentation_counts`` — how many such calls the *planning hot
   path* (``Master.plan_for_context`` + ``Master.compile_tasks``, the
   path ``bench_planning`` gates) actually makes, measured with
   counting no-op sinks so ``tracer.enabled`` guards are respected;
3. ``gate`` — the implied slowdown of the planning median
   (``calls x cost / median``), which must stay under
   ``MAX_OVERHEAD_PERCENT`` (3%); ``tests/test_bench_obs.py``
   (marker ``obs_overhead``) fails otherwise;
4. ``traced_e2e`` — informational only: wall-clock of one small
   event-driven repair with live tracing+metrics vs the no-op default
   (live tracing is *expected* to cost more; it is opt-in).

Run directly (``python -m benchmarks.bench_obs``), or with ``--smoke``
for the sub-second pass the test suite uses to validate the schema.
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

import numpy as np

from benchmarks.common import SEED, quantile, write_json_report
from repro.analysis import make_fixed_context
from repro.cluster import ClusterSystem
from repro.cluster.master import Master, StripeLocation
from repro.core.plancache import PlanCache
from repro.ec import RSCode
from repro.obs import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_FLEET,
    NULL_METRICS,
    NULL_SPAN,
    NULL_TRACER,
    NullMetricsRegistry,
    NullTracer,
    Tracer,
)
from repro.repair import get_algorithm
from repro.workloads import make_trace

SCHEMA_VERSION = 1

#: The gate: no-op instrumentation may not imply more than this slowdown
#: of the planning medians tracked by ``bench_planning``.
MAX_OVERHEAD_PERCENT = 3.0


# --------------------------------------------------------------------- #
# counting no-op sinks: same behaviour as the null singletons (enabled
# stays False, so guarded instrumentation is skipped exactly as in the
# default configuration), but every call is tallied


class CountingNullTracer(NullTracer):
    def __init__(self) -> None:
        super().__init__()
        self.calls = 0

    def start_span(self, name, **kwargs):
        self.calls += 1
        return NULL_SPAN

    def end_span(self, span, t=None, **attrs):
        self.calls += 1
        return NULL_SPAN

    def record_span(self, name, start, end, **kwargs):
        self.calls += 1
        return NULL_SPAN

    def event(self, span, name, t=None, **attrs):
        self.calls += 1
        return super().event(span, name, t, **attrs)

    def set_attrs(self, span, **attrs) -> None:
        self.calls += 1


class _CountingNullCounter:
    __slots__ = ("owner",)

    def __init__(self, owner) -> None:
        self.owner = owner

    def inc(self, amount: float = 1.0) -> None:
        self.owner.calls += 1

    def set(self, value: float) -> None:
        self.owner.calls += 1

    def observe(self, value: float) -> None:
        self.owner.calls += 1


class CountingNullMetrics(NullMetricsRegistry):
    def __init__(self) -> None:
        super().__init__()
        self.calls = 0
        self._child = _CountingNullCounter(self)

    def counter(self, name, help="", **labels):
        self.calls += 1
        return self._child

    def gauge(self, name, help="", **labels):
        self.calls += 1
        return self._child

    def histogram(self, name, help="", buckets=(), **labels):
        self.calls += 1
        return self._child


# --------------------------------------------------------------------- #


def _per_call_ns(fn, calls: int) -> float:
    fn()  # warm up
    start = perf_counter()
    for _ in range(calls):
        fn()
    return (perf_counter() - start) / calls * 1e9


def _bench_null_primitives(calls: int) -> dict:
    return {
        "event_ns": _per_call_ns(
            lambda: NULL_TRACER.event(None, "x", a=1), calls
        ),
        "span_pair_ns": _per_call_ns(
            lambda: NULL_TRACER.end_span(NULL_TRACER.start_span("x", a=1)),
            calls,
        ),
        "counter_inc_ns": _per_call_ns(lambda: NULL_COUNTER.inc(), calls),
        "counter_factory_inc_ns": _per_call_ns(
            lambda: NULL_METRICS.counter("repro_x_total", "h", l="v").inc(),
            calls,
        ),
        "fleet_observe_ns": _per_call_ns(
            lambda: NULL_FLEET.observe("repro_x", 1.0, algorithm="a"), calls
        ),
        "enabled_check_ns": _per_call_ns(lambda: NULL_TRACER.enabled, calls),
    }


def _count_planning_calls() -> dict:
    """Instrumentation calls one planning request actually makes."""
    n, k = 14, 10
    tracer = CountingNullTracer()
    metrics = CountingNullMetrics()
    master = Master(RSCode(n, k), get_algorithm("fullrepair"), n + 2,
                    plan_cache=PlanCache(max_entries=16))
    master.tracer = tracer
    master.metrics = metrics
    # helpers 1..n-1 hold chunks 0..n-2, the lost chunk n-1 lived on node n
    master.register_stripe(
        StripeLocation(stripe_id="s0", placement=tuple(range(1, n + 1)))
    )
    ctx = make_fixed_context(n, k, seed=SEED)
    plan = master.plan_for_context(ctx)
    master.compile_tasks(
        plan, "s0", n - 1, chunk_bytes=1 << 20, num_slices=16,
        repair_id="s0/nX",
    )
    return {
        "tracer_calls": tracer.calls,
        "metrics_calls": metrics.calls,
        "total": tracer.calls + metrics.calls,
    }


def _planning_median_us(rounds: int) -> float:
    algo = get_algorithm("fullrepair")
    contexts = [make_fixed_context(14, 10, seed=SEED + i) for i in range(4)]
    algo.plan(contexts[0])
    samples = []
    for i in range(rounds):
        start = perf_counter()
        algo.plan(contexts[i % len(contexts)])
        samples.append(perf_counter() - start)
    return quantile(samples, 0.5) * 1e6


def _bench_traced_e2e(chunk_bytes: int) -> dict:
    """Wall-clock of one event-driven repair: no-op vs live obs sinks."""

    def run_one(tracer, metrics) -> float:
        code = RSCode(9, 6)
        system = ClusterSystem(
            12, code, slice_bytes=16 * 1024, tracer=tracer, metrics=metrics
        )
        rng = np.random.default_rng(SEED)
        data = rng.integers(0, 256, (code.k, chunk_bytes), dtype=np.uint8)
        system.write_stripe("s0", data, placement=tuple(range(code.n)))
        snap = make_trace("tpcds", num_nodes=12, num_snapshots=40,
                          seed=SEED).snapshot(20)
        system.set_bandwidth(snap)
        system.fail_node(3)
        start = perf_counter()
        outcome = system.repair("s0", 3, requester=10, store=False)
        elapsed = perf_counter() - start
        assert outcome.verified
        return elapsed

    null_s = run_one(None, None)
    traced_s = run_one(Tracer(), MetricsRegistry())
    return {
        "chunk_bytes": chunk_bytes,
        "null_wall_s": null_s,
        "traced_wall_s": traced_s,
        "traced_over_null": traced_s / null_s if null_s > 0 else None,
        "note": "informational: live tracing is opt-in and expected to cost more",
    }


def run(smoke: bool = False, out_path=None) -> dict:
    """Execute the harness and write ``BENCH_obs.json``; returns it."""
    if smoke:
        prim_calls, plan_rounds, chunk_bytes = 20_000, 30, 64 * 1024
    else:
        prim_calls, plan_rounds, chunk_bytes = 200_000, 200, 512 * 1024
    primitives = _bench_null_primitives(prim_calls)
    counts = _count_planning_calls()
    median_us = _planning_median_us(plan_rounds)
    # charge every instrumentation call at the *most expensive* no-op
    # primitive observed — a deliberate overestimate
    worst_ns = max(
        primitives["event_ns"],
        primitives["span_pair_ns"],
        primitives["counter_factory_inc_ns"],
        primitives["fleet_observe_ns"],
    )
    overhead_us = counts["total"] * worst_ns / 1e3
    overhead_percent = 100.0 * overhead_us / median_us if median_us else 0.0
    report = {
        "benchmark": "obs",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "smoke": smoke,
            "seed": SEED,
            "primitive_calls": prim_calls,
            "planning_rounds": plan_rounds,
        },
        "null_primitives": primitives,
        "instrumentation_counts": counts,
        "planning_median_us": median_us,
        "gate": {
            "max_overhead_percent": MAX_OVERHEAD_PERCENT,
            "overhead_us_per_request": overhead_us,
            "overhead_percent": overhead_percent,
            "pass": overhead_percent <= MAX_OVERHEAD_PERCENT,
        },
        "traced_e2e": _bench_traced_e2e(chunk_bytes),
    }
    path = write_json_report("obs", report, path=out_path)
    print(f"wrote {path}")
    return report


def main(argv=None) -> int:
    from benchmarks.common import REPO_ROOT

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast low-resolution pass (schema validation); writes "
             "BENCH_obs.smoke.json so the full-run artefact survives",
    )
    args = parser.parse_args(argv)
    out_path = REPO_ROOT / "BENCH_obs.smoke.json" if args.smoke else None
    report = run(smoke=args.smoke, out_path=out_path)
    gate = report["gate"]
    print(
        f"no-op overhead: {gate['overhead_percent']:.4f}% of the planning "
        f"median (gate: {gate['max_overhead_percent']}%) -> "
        f"{'PASS' if gate['pass'] else 'FAIL'}"
    )
    return 0 if gate["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
