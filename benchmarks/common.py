"""Shared benchmark configuration.

Every benchmark regenerates one paper artefact (Table I, Figs. 4-8) and
writes the paper-style rendering to ``benchmarks/out/<name>.txt`` in
addition to the pytest-benchmark timing table.  Scale knobs default to a
few minutes of total runtime; the paper-scale values are noted next to
each knob.
"""

from __future__ import annotations

import os
import pathlib

#: Where rendered tables/series land.
OUT_DIR = pathlib.Path(__file__).parent / "out"

#: The paper's RS parameterisations (§V-B).
CODES = ((6, 4), (9, 6), (12, 8), (14, 10))

#: Workloads evaluated (§V-B).
WORKLOADS = ("tpcds", "tpch", "swim")

#: Repair instances sampled per (workload, n, k) cell.  Paper: 100.
NUM_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "12"))

#: Trace length to sample from.  Paper: 6000.
NUM_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_SNAPSHOTS", "1500"))

#: PPT emulation budget for experiment sweeps (exactness is preserved by
#: oracle seeding; this only bounds the brute-force emulation cost).
PPT_BUDGET = int(os.environ.get("REPRO_PPT_BUDGET", "3000"))

#: Master seed for every benchmark.
SEED = int(os.environ.get("REPRO_BENCH_SEED", "2023"))

ALGO_KWARGS = {"ppt": {"max_emulations": PPT_BUDGET}}


def write_report(name: str, text: str) -> pathlib.Path:
    """Persist a rendered artefact and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
    return path
