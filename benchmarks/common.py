"""Shared benchmark configuration.

Every benchmark regenerates one paper artefact (Table I, Figs. 4-8) and
writes the paper-style rendering to ``benchmarks/out/<name>.txt`` in
addition to the pytest-benchmark timing table.  Scale knobs default to a
few minutes of total runtime; the paper-scale values are noted next to
each knob.
"""

from __future__ import annotations

import json
import os
import pathlib

#: Where rendered tables/series land.
OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Repository root — machine-readable regression artefacts
#: (``BENCH_*.json``) land here so CI diffs them in one place.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The paper's RS parameterisations (§V-B).
CODES = ((6, 4), (9, 6), (12, 8), (14, 10))

#: Workloads evaluated (§V-B).
WORKLOADS = ("tpcds", "tpch", "swim")

#: Repair instances sampled per (workload, n, k) cell.  Paper: 100.
NUM_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "12"))

#: Trace length to sample from.  Paper: 6000.
NUM_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_SNAPSHOTS", "1500"))

#: PPT emulation budget for experiment sweeps (exactness is preserved by
#: oracle seeding; this only bounds the brute-force emulation cost).
PPT_BUDGET = int(os.environ.get("REPRO_PPT_BUDGET", "3000"))

#: Master seed for every benchmark.
SEED = int(os.environ.get("REPRO_BENCH_SEED", "2023"))

ALGO_KWARGS = {"ppt": {"max_emulations": PPT_BUDGET}}


def write_report(name: str, text: str) -> pathlib.Path:
    """Persist a rendered artefact and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
    return path


def write_json_report(
    name: str, payload: dict, path: pathlib.Path | None = None
) -> pathlib.Path:
    """Persist a machine-readable artefact as ``BENCH_<name>.json``.

    Written at the repository root by default (stable keys, sorted,
    indented) so perf regressions show up as reviewable diffs; tests
    pass an explicit ``path`` to keep smoke output out of the tree.
    """
    if path is None:
        path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def quantile(samples, q: float) -> float:
    """Linear-interpolation quantile of a non-empty sample list.

    Matches ``numpy.percentile``'s default; implemented locally so the
    timing path stays free of array conversions for small sample sets.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(samples)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
