"""Detection-quality harness for the streaming divergence detectors.

Two scored suites, one committed artefact (``BENCH_detect.json``):

**Watchdog suite** — the cluster prototype's fault matrix (clean /
hub crash / helper straggler / requester stall), each run twice: with
the blunt timeout watchdog only, and with a
:class:`~repro.obs.detect.DivergenceMonitor` wired so the watchdog gains
the detector-informed early-abort path.  Scored on *time to
mitigation*: the first intervention (``watchdog.fire`` or
``detect.abort``) after the fault, falling back to completion time when
an arm never intervenes (the straggler limps to the end under the
timeout-only watchdog — that IS its detection latency).  The tier-1
gate requires the detector arm's mean latency to be strictly lower,
with **zero** detector aborts on the clean scenario.

**Drift suite** — ``simulate_under_drift`` re-planning policies under a
drifting SWIM trace, a mid-repair helper crash, and a straggling
helper: ``never`` (no re-plan), ``oracle`` (re-plan every interval — an
upper bound that pays maximal calc time), ``interval`` (the existing
3 s fixed period), and ``detect`` (re-plan only when the plan-divergence
detector alarms).  The gate requires ``detect`` to beat ``never`` on
repair time for every case, and to raise **zero** alarms on a perfectly
flat trace (the false-positive-rate check).

Run ``python -m benchmarks.bench_detect`` to regenerate the committed
artefact; ``tests/test_bench_detect.py`` re-runs the smoke tier and
enforces the gate on every tier-1 run.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.obs import DivergenceMonitor, MetricsRegistry, Tracer
from repro.obs.demo import _build_system, _find_hub
from repro.repair import get_algorithm
from repro.sim.dynamics import simulate_under_drift
from repro.workloads import make_trace
from repro.workloads.base import Trace

from .common import SEED, write_json_report

SCHEMA_VERSION = 1

#: Watchdog fault matrix (ISSUE 9): the scenarios every arm must face.
WATCHDOG_SCENARIOS = ("clean", "hub_crash", "helper_straggler", "requester_stall")

#: Drift-suite cases and re-planning policies.
DRIFT_CASES = ("drifting", "dead_helper", "straggler")
DRIFT_POLICIES = ("never", "oracle", "interval", "detect")


# --------------------------------------------------------------------------- #
# watchdog suite
# --------------------------------------------------------------------------- #


def _first_fire(tracer: Tracer):
    """(name, t) of the earliest intervention event in a trace, or None."""
    fires = []
    for span in tracer.spans():
        for ev in span.events:
            if ev.name in ("watchdog.fire", "detect.abort"):
                fires.append((ev.name, ev.time))
    return min(fires, key=lambda f: f[1]) if fires else None


def _watchdog_run(
    scenario: str,
    *,
    detector: bool,
    n: int,
    k: int,
    num_nodes: int,
    chunk_bytes: int,
    failed_node: int,
    requester: int,
    snapshot,
    hub: int,
    helper: int,
    fault_at_s: float,
) -> dict:
    tracer = Tracer()
    metrics = MetricsRegistry()
    monitor = (
        DivergenceMonitor.standard(tracer=tracer, metrics=metrics)
        if detector
        else None
    )
    system = _build_system(
        n=n, k=k, num_nodes=num_nodes, chunk_bytes=chunk_bytes,
        failed_node=failed_node, snapshot=snapshot, seed=SEED,
        tracer=tracer, metrics=metrics,
    )
    system.divergence = monitor
    if monitor is not None:
        monitor.clock = lambda: system.events.now
    # heartbeats keep the master's bandwidth picture live, so a re-plan
    # after an abort can actually route around the injected fault
    system.enable_heartbeats(period_s=0.005)
    if scenario == "hub_crash":
        system.events.schedule(fault_at_s, lambda: system.fail_node(hub))
    elif scenario == "helper_straggler":
        system.events.schedule(
            fault_at_s, lambda: system.set_rate_cap(helper, 1.0)
        )
    elif scenario == "requester_stall":
        system.events.schedule(
            fault_at_s, lambda: system.stall_node(requester, 10.0)
        )
    outcome = system.repair(
        "s1", failed_node, requester=requester, store=False,
        on_failure="outcome",
    )
    fire = _first_fire(tracer)
    detect_aborts = sum(
        1
        for span in tracer.spans()
        for ev in span.events
        if ev.name == "detect.abort"
    )
    faulted = scenario != "clean"
    if not faulted:
        latency = None
    elif fire is not None:
        latency = fire[1] - fault_at_s
    else:
        # never intervened: the repair limped to its end — time to
        # mitigation is the whole remaining repair
        latency = outcome.elapsed_seconds - fault_at_s
    return {
        "status": outcome.status,
        "elapsed_s": outcome.elapsed_seconds,
        "retries": outcome.retries,
        "first_intervention": (
            None if fire is None else {"event": fire[0], "t": fire[1]}
        ),
        "detect_aborts": detect_aborts,
        "suppressed": len(monitor.suppressions) if monitor else 0,
        "detection_latency_s": latency,
    }


def _watchdog_suite(*, chunk_bytes: int) -> dict:
    n, k, num_nodes = 14, 10, 16
    failed_node, requester = 3, num_nodes - 1
    snapshot = make_trace(
        "tpcds", num_nodes=num_nodes, num_snapshots=60, seed=4
    ).snapshot(30)
    # a clean, un-instrumented pass sizes the fault time and finds the
    # plan's hub and a direct helper (the demo's protocol)
    probe = _build_system(
        n=n, k=k, num_nodes=num_nodes, chunk_bytes=chunk_bytes,
        failed_node=failed_node, snapshot=snapshot, seed=SEED,
    )
    clean = probe.repair("s1", failed_node, requester=requester, store=False)
    hub = _find_hub(clean.plan, requester)
    helper = next(
        e.child
        for p in clean.plan.pipelines
        for e in p.edges
        if e.parent == requester
    )
    fault_at_s = 0.5 * clean.elapsed_seconds
    kwargs = dict(
        n=n, k=k, num_nodes=num_nodes, chunk_bytes=chunk_bytes,
        failed_node=failed_node, requester=requester, snapshot=snapshot,
        hub=hub, helper=helper, fault_at_s=fault_at_s,
    )
    scenarios: dict[str, dict] = {}
    for scenario in WATCHDOG_SCENARIOS:
        scenarios[scenario] = {
            "baseline": _watchdog_run(scenario, detector=False, **kwargs),
            "detector": _watchdog_run(scenario, detector=True, **kwargs),
        }
    faulted = [s for s in WATCHDOG_SCENARIOS if s != "clean"]
    mean_latency = {
        arm: float(
            np.mean([scenarios[s][arm]["detection_latency_s"] for s in faulted])
        )
        for arm in ("baseline", "detector")
    }
    missed = sum(
        1
        for s in faulted
        if scenarios[s]["detector"]["first_intervention"] is None
    )
    return {
        "code": {"n": n, "k": k, "num_nodes": num_nodes},
        "chunk_bytes": chunk_bytes,
        "fault_at_s": fault_at_s,
        "clean_elapsed_s": clean.elapsed_seconds,
        "scenarios": scenarios,
        "mean_detection_latency_s": mean_latency,
        "false_aborts_clean": scenarios["clean"]["detector"]["detect_aborts"],
        "missed_detections": missed,
    }


# --------------------------------------------------------------------------- #
# drift suite
# --------------------------------------------------------------------------- #


def _flat_trace(num_nodes: int, bw_mbps: float, length: int) -> Trace:
    shape = (length, num_nodes)
    return Trace(
        workload="flat",
        capacity_mbps=1000.0,
        uplink=np.full(shape, bw_mbps),
        downlink=np.full(shape, bw_mbps),
    )


def _drift_suite(*, chunk_bytes: int) -> dict:
    num_nodes, helpers, k, requester = 10, tuple(range(6)), 4, 9
    algorithm = get_algorithm("fullrepair")
    trace = make_trace("swim", num_nodes=num_nodes, num_snapshots=400, seed=3)
    fault_at_s = 5.0
    case_kwargs = {
        "drifting": {},
        "dead_helper": {"dead_from": {2: fault_at_s}},
        "straggler": {"node_rate_caps": {2: 40.0}},
    }
    policy_kwargs = {
        "never": {},
        "oracle": {"replan_interval_s": 1.0},
        "interval": {"replan_interval_s": 3.0},
        # alarm-triggered, with a 15 s staleness bound (5x the fixed
        # policy's period) so a pessimistic-but-achieved plan cannot
        # persist — see simulate_under_drift's replan_on docs
        "detect": {"replan_on": "detect", "replan_interval_s": 15.0},
    }
    cases: dict[str, dict] = {}
    for case, faults in case_kwargs.items():
        per_policy: dict[str, dict] = {}
        for policy, knobs in policy_kwargs.items():
            result = simulate_under_drift(
                algorithm,
                trace,
                start_instant=0,
                requester=requester,
                helpers=helpers,
                k=k,
                chunk_bytes=chunk_bytes,
                interval_s=1.0,
                stall_deadline_s=120.0,
                **faults,
                **knobs,
            )
            per_policy[policy] = {
                "seconds": result.seconds,
                "completed": result.completed,
                "timed_out": result.timed_out,
                "replans": result.replans,
                "calc_seconds_total": result.calc_seconds_total,
                "stalled_intervals": result.stalled_intervals,
                "alarms": result.alarms,
                "alarm_seconds": list(result.alarm_seconds),
            }
        cases[case] = per_policy
    # detection latency on the injected-fault case: first alarm - fault
    dead = cases["dead_helper"]["detect"]
    detect_latency = (
        dead["alarm_seconds"][0] - fault_at_s if dead["alarm_seconds"] else None
    )
    # false-positive check: a perfectly flat trace must never alarm
    flat = simulate_under_drift(
        algorithm,
        _flat_trace(num_nodes, 400.0, 400),
        start_instant=0,
        requester=requester,
        helpers=helpers,
        k=k,
        chunk_bytes=chunk_bytes,
        interval_s=1.0,
        replan_on="detect",
    )
    return {
        "chunk_bytes": chunk_bytes,
        "fault_at_s": fault_at_s,
        "cases": cases,
        "dead_helper_detection_latency_s": detect_latency,
        "flat": {
            "seconds": flat.seconds,
            "completed": flat.completed,
            "alarms": flat.alarms,
            "replans": flat.replans,
        },
    }


# --------------------------------------------------------------------------- #
# gate + entry point
# --------------------------------------------------------------------------- #


def _gate(watchdog: dict, drift: dict) -> dict:
    latency = watchdog["mean_detection_latency_s"]
    detector_beats_timeout = latency["detector"] < latency["baseline"]
    zero_false_aborts = watchdog["false_aborts_clean"] == 0
    no_missed = watchdog["missed_detections"] == 0
    detect_beats_never = all(
        case["detect"]["seconds"] < case["never"]["seconds"]
        for case in drift["cases"].values()
    )
    zero_flat_alarms = drift["flat"]["alarms"] == 0
    checks = {
        "detector_beats_timeout": detector_beats_timeout,
        "zero_false_aborts": zero_false_aborts,
        "no_missed_detections": no_missed,
        "detect_beats_never": detect_beats_never,
        "zero_flat_alarms": zero_flat_alarms,
    }
    return {**checks, "pass": all(checks.values())}


def run(*, smoke: bool = False, out_path=None) -> dict:
    """Run both suites and persist the artefact; returns the report.

    ``smoke=True`` shrinks the drift chunk so the whole run fits in a
    tier-1 test budget; the scored gate conditions are identical.
    """
    # the drift chunk must span enough trace for drift to matter —
    # a short repair never diverges and the policies degenerate into a
    # single-plan tie (smoke still covers tens of intervals)
    watchdog = _watchdog_suite(chunk_bytes=64 * 1024)
    drift = _drift_suite(
        chunk_bytes=(2 * 1024**3 if smoke else 4 * 1024**3)
    )
    report = {
        "benchmark": "detect",
        "schema_version": SCHEMA_VERSION,
        "config": {"smoke": smoke, "seed": SEED},
        "watchdog": watchdog,
        "drift": drift,
        "gate": _gate(watchdog, drift),
    }
    write_json_report("detect", report, path=out_path)
    return report


def main() -> int:
    report = run(smoke="--smoke" in sys.argv[1:])
    gate = report["gate"]
    latency = report["watchdog"]["mean_detection_latency_s"]
    print(
        f"mean time-to-mitigation: timeout-only {latency['baseline']:.4f}s, "
        f"detector {latency['detector']:.4f}s"
    )
    for case, policies in report["drift"]["cases"].items():
        row = ", ".join(
            f"{p} {policies[p]['seconds']:.1f}s" for p in DRIFT_POLICIES
        )
        print(f"drift/{case}: {row}")
    print(f"gate: {gate}")
    return 0 if gate["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
