"""Extension benchmark — repair throughput vs controlled unevenness.

Quantifies the paper's Conclusions 1-2 directly: at exactly-controlled
C_v levels, the achievable repair throughput of single-pipeline schemes
collapses while FullRepair's multi-pipeline schedule keeps harvesting
the (unchanged) aggregate bandwidth.

Expected shape: RP/PivotRepair monotone decreasing in C_v; FullRepair
roughly flat until extreme unevenness; the FullRepair/RP ratio growing
from ~1x (even network) to >1.5x at C_v >= 0.4.
"""

from benchmarks.common import SEED, write_report
from repro.analysis import heterogeneity_sweep, render_heterogeneity

CV_TARGETS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def run_sweep():
    return heterogeneity_sweep(
        cv_targets=CV_TARGETS,
        samples_per_point=15,
        seed=SEED,
    )


def test_heterogeneity_sweep(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_report("heterogeneity_throughput", render_heterogeneity(points))
    rp = [p.rates["rp"] for p in points]
    ratio = [p.rates["fullrepair"] / p.rates["rp"] for p in points]
    assert rp[0] > rp[-1], "single pipeline must degrade with C_v"
    assert max(ratio[2:]) > ratio[0], "multi-pipeline gap must widen with C_v"
    # the multi-pipeline advantage exceeds 20% somewhere in the uneven
    # regime (exact peaks depend on where the requester's downlink lands)
    assert max(ratio) > 1.2
