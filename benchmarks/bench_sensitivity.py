"""Extension benchmark — robustness to the execution-model constants.

Sweeps the two free constants of the transfer model (per-slice protocol
overhead, per-byte GF cost) over generous ranges and checks that the
paper's headline transfer-time ordering — FullRepair fastest, RP slowest
— holds at every grid point on the fixed uneven scenario.
"""

from benchmarks.common import ALGO_KWARGS, SEED, write_report
from repro.analysis import render_sensitivity, sensitivity_sweep


def run_grid():
    return sensitivity_sweep(seed=SEED, algorithm_kwargs=ALGO_KWARGS)


def test_model_sensitivity(benchmark):
    points = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    write_report("model_sensitivity", render_sensitivity(points))
    assert all(p.ordering_holds for p in points)
    margins = [p.fullrepair_margin for p in points]
    assert min(margins) > 1.0
    benchmark.extra_info["min_margin"] = min(margins)
    benchmark.extra_info["max_margin"] = max(margins)
