"""Extension benchmark — repair under bandwidth drift (beyond the paper).

The paper schedules against a snapshot; hot clusters keep moving.  This
bench executes large repairs against the SWIM trace while the foreground
load drifts, comparing each scheduler static (plan once) vs adaptive
(re-plan every 3 s on the remaining bytes — viable only because the
schedulers are fast, the property Experiment 2 measures).

Expected shape: static plans degrade badly under drift; re-planning
recovers most of the loss; FullRepair+replanning achieves the highest
goodput since every re-plan recaptures *all* currently-available
bandwidth.
"""

import numpy as np
import pytest

from benchmarks.common import SEED, write_report
from repro.net import units
from repro.repair import get_algorithm
from repro.sim import simulate_under_drift
from repro.workloads import make_trace

ALGORITHMS = ("rp", "pivotrepair", "fullrepair")
_RESULTS: dict[tuple[str, str], float] = {}


def _scenario():
    trace = make_trace("swim", num_nodes=16, num_snapshots=2000, seed=SEED)
    rng = np.random.default_rng(SEED)
    nodes = rng.permutation(16)
    start = int(trace.congested_instants()[300])
    return trace, dict(
        start_instant=start,
        requester=int(nodes[9]),
        helpers=tuple(int(x) for x in nodes[1:9]),
        k=6,
        chunk_bytes=units.mib(1024),
    )


@pytest.mark.parametrize("mode", ["static", "adaptive"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_drift_repair(benchmark, algorithm, mode):
    trace, kwargs = _scenario()
    replan = 3.0 if mode == "adaptive" else None

    def run():
        return simulate_under_drift(
            get_algorithm(algorithm), trace, replan_interval_s=replan, **kwargs
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.completed
    _RESULTS[(algorithm, mode)] = res.seconds
    benchmark.extra_info["repair_seconds"] = res.seconds
    benchmark.extra_info["replans"] = res.replans


def test_drift_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _RESULTS
    lines = [
        "Repair of a 1 GiB payload under SWIM bandwidth drift",
        f"{'scheduler':>14} {'static':>10} {'adaptive':>10} {'speedup':>9}",
    ]
    for algo in ALGORITHMS:
        s = _RESULTS[(algo, "static")]
        a = _RESULTS[(algo, "adaptive")]
        lines.append(f"{algo:>14} {s:9.1f}s {a:9.1f}s {s / a:8.2f}x")
    write_report("drift_adaptivity", "\n".join(lines))
    for algo in ALGORITHMS:
        assert _RESULTS[(algo, "adaptive")] <= _RESULTS[(algo, "static")] * 1.05
    best = min(_RESULTS, key=_RESULTS.get)
    assert best == ("fullrepair", "adaptive")
