"""Extension benchmark — full-node repair (beyond the paper's scope).

The paper repairs one chunk; this bench scales the comparison to a whole
failed node: every stripe it held needs a repair, and the repairs share
the cluster's bandwidth.  Compares

* sequential vs batched execution (the fullnode planner's strategies),
* FullRepair vs PivotRepair as the per-stripe scheduler inside batches.

Expected shape: batching shortens the makespan (idle bandwidth during a
single repair gets used by peers), and FullRepair-based batches dominate
single-pipeline batches because each plan leaves less stranded bandwidth.
"""

import numpy as np
import pytest

from benchmarks.common import SEED, write_report
from repro.core import StripeRepairSpec, plan_full_node_repair
from repro.net import units
from repro.workloads import make_trace

NUM_STRIPES = 10


def _specs_and_snapshot():
    trace = make_trace("tpcds", num_nodes=16, num_snapshots=600, seed=SEED)
    snap = trace.snapshot(int(trace.congested_instants()[0]))
    rng = np.random.default_rng(SEED)
    specs = []
    for i in range(NUM_STRIPES):
        nodes = rng.permutation(16)
        specs.append(
            StripeRepairSpec(
                stripe_id=f"s{i}",
                requester=int(nodes[0]),
                helpers=tuple(int(x) for x in nodes[1:9]),
                chunk_bytes=units.mib(64),
            )
        )
    return specs, snap


@pytest.mark.parametrize("algorithm", ["pivotrepair", "fullrepair"])
@pytest.mark.parametrize("strategy", ["sequential", "batched"])
def test_fullnode_repair(benchmark, algorithm, strategy):
    specs, snap = _specs_and_snapshot()

    def run():
        return plan_full_node_repair(
            specs, snap, k=6, algorithm=algorithm, strategy=strategy
        )

    plan = benchmark.pedantic(run, rounds=1, iterations=1)
    plan.validate()
    _RESULTS[(algorithm, strategy)] = plan.makespan_seconds
    benchmark.extra_info["makespan_s"] = plan.makespan_seconds
    benchmark.extra_info["batches"] = [len(b) for b in plan.batches]


_RESULTS: dict[tuple[str, str], float] = {}


def test_fullnode_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _RESULTS
    lines = [
        f"Full-node repair of {NUM_STRIPES} x 64 MiB chunks (16-node cluster)",
        f"{'scheduler':>14} {'strategy':>12} {'makespan':>10}",
    ]
    for (algo, strat), makespan in sorted(_RESULTS.items()):
        lines.append(f"{algo:>14} {strat:>12} {makespan:9.2f}s")
    write_report("fullnode_repair", "\n".join(lines))
    # batching helps for both schedulers
    for algo in ("pivotrepair", "fullrepair"):
        assert (
            _RESULTS[(algo, "batched")] <= _RESULTS[(algo, "sequential")] * 1.001
        )
    # FullRepair-based recovery is the fastest configuration overall
    best = min(_RESULTS, key=_RESULTS.get)
    assert best[0] == "fullrepair"
