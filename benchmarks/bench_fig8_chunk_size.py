"""Figure 8 (Experiment 5) — impact of chunk size.

Fixed uneven bandwidth, (6, 4), 64 KiB slices; chunk size swept from
4 MiB to 64 MiB.

Expected shape (paper Fig. 8): repair time grows linearly with chunk
size for every method; FullRepair's line has the smallest slope and
stays lowest throughout.
"""

import pytest

from benchmarks.common import ALGO_KWARGS, SEED, write_report
from repro.analysis import chunk_size_sweep, render_sweep
from repro.net import units

CHUNKS = tuple(units.mib(m) for m in (4, 8, 16, 32, 64))


def run_sweep():
    return chunk_size_sweep(
        chunk_sizes_bytes=CHUNKS,
        n=6,
        k=4,
        seed=SEED,
        algorithm_kwargs=ALGO_KWARGS,
    )


def test_fig8_chunk_size(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_report("fig8_chunk_size", render_sweep(series, "chunk size"))
    for name, data in series.items():
        times = [data[c] for c in CHUNKS]
        assert all(a < b for a, b in zip(times, times[1:])), name
        # linearity: doubling the chunk ~doubles the transfer-dominated time
        assert times[-1] / times[0] == pytest.approx(16, rel=0.25), name
    for c in CHUNKS:
        for base in ("rp", "ppt", "pivotrepair"):
            assert series["fullrepair"][c] <= series[base][c] * 1.01, (c, base)
