"""Figure 6 (Experiment 3) — data transfer time.

Same sweep as Figure 4, reporting the transfer component only (the time
from task dispatch to the chunk being rebuilt, excluding scheduling
calculation).

Expected shape (paper Fig. 6): RP longest everywhere (a chain cannot
route around congestion); PPT and PivotRepair essentially tied (same
optimal tree); FullRepair lowest, with reductions up to ~45% vs RP and
~40% vs the tree schemes at (9,6).
"""

import pytest

from benchmarks.common import (
    ALGO_KWARGS,
    CODES,
    NUM_SAMPLES,
    NUM_SNAPSHOTS,
    SEED,
    WORKLOADS,
    write_report,
)
from repro.analysis import (
    render_comparison,
    render_reductions,
    repair_time_experiment,
)

_RESULTS = []


@pytest.mark.parametrize("workload", WORKLOADS)
def test_fig6_transfer_time(benchmark, workload):
    def run():
        return [
            repair_time_experiment(
                workload=workload,
                n=n,
                k=k,
                num_samples=NUM_SAMPLES,
                num_snapshots=NUM_SNAPSHOTS,
                seed=SEED + 1,
                algorithm_kwargs=ALGO_KWARGS,
            )
            for n, k in CODES
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.extend(results)
    for r in results:
        # PPT and PivotRepair pick equal-rate trees; depths can differ by
        # a hop, so transfer times agree to within slicing overheads
        assert r.mean_transfer("ppt") == pytest.approx(
            r.mean_transfer("pivotrepair"), rel=0.05
        )
        # FullRepair's transfer time is the shortest
        for base in ("rp", "ppt", "pivotrepair"):
            assert r.mean_transfer("fullrepair") <= r.mean_transfer(base) * 1.01


def test_fig6_report(benchmark):
    assert _RESULTS, "run the per-workload benches first"

    def render():
        return (
            render_comparison(_RESULTS, metric="transfer")
            + "\n\n"
            + render_reductions(_RESULTS, metric="transfer")
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    write_report("fig6_transfer_time", text)
