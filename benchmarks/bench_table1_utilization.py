"""Table I — distribution of network bandwidth resources by C_v bucket.

Regenerates the paper's observation table: for RP and PPT/PivotRepair
(which select identical trees — the paper merges their rows), the share
of the cluster's available repair bandwidth that is used by selected
helpers, idle on unselected helpers, and idle on selected helpers, per
network-unevenness bucket.  FullRepair is included to show the
utilisation head-room the paper's design captures.

Expected shape (paper Table I): utilisation high (>70%) when C_v < 0.3
and collapsing as C_v grows; unselected-node share ~10-20% throughout;
selected-but-unused share exploding past C_v >= 0.3.
"""

from benchmarks.common import ALGO_KWARGS, NUM_SNAPSHOTS, SEED, write_report
from repro.analysis import render_utilization_table, utilization_experiment


def run_table1():
    table = utilization_experiment(
        workloads=("tpcds", "tpch", "swim"),
        n=14,
        k=10,
        num_snapshots=NUM_SNAPSHOTS,
        samples_per_workload=max(200, NUM_SNAPSHOTS // 5),
        seed=SEED,
        algorithms=("rp", "pivotrepair", "fullrepair"),
        algorithm_kwargs=ALGO_KWARGS,
    )
    return table


def test_table1_utilization(benchmark):
    table = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    text = render_utilization_table(table)
    write_report("table1_utilization", text)
    # sanity: utilisation decreases from the most even to the most uneven
    # populated bucket for the single-pipeline schemes
    buckets = sorted(b for b in table.cells if "rp" in table.cells[b])
    assert buckets, "no C_v buckets populated"
    lo, hi = buckets[0], buckets[-1]
    if lo != hi:
        assert (
            table.cells[lo]["rp"].bandwidth_utilization
            > table.cells[hi]["rp"].bandwidth_utilization
        )
    benchmark.extra_info["buckets"] = {b: table.counts[b] for b in buckets}
