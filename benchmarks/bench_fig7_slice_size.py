"""Figure 7 (Experiment 4) — impact of slice size.

Fixed uneven bandwidth, (6, 4), 64 MiB chunk; slice size swept from
2 KiB to 1024 KiB.  Per-slice protocol overhead (1 ms per slice per hop,
modelling the request/acknowledge round of the real prototype) dominates
small slices, so repair time falls as slices grow.

Expected shape (paper Fig. 7): all methods improve monotonically with
slice size across the swept range; FullRepair lowest at every point.
"""

from benchmarks.common import ALGO_KWARGS, SEED, write_report
from repro.analysis import render_sweep, slice_size_sweep
from repro.net import units

SLICES = tuple(units.kib(2**i) for i in range(1, 11))  # 2 KiB .. 1024 KiB


def run_sweep():
    return slice_size_sweep(
        slice_sizes_bytes=SLICES,
        n=6,
        k=4,
        chunk_bytes=units.mib(64),
        seed=SEED,
        algorithm_kwargs=ALGO_KWARGS,
    )


def test_fig7_slice_size(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_report("fig7_slice_size", render_sweep(series, "slice size"))
    for name, data in series.items():
        times = [data[s] for s in SLICES]
        # repair time decreases with slice size (strict through 256 KiB,
        # non-increasing-modulo-2% at the flat tail)
        mid = SLICES.index(units.kib(256))
        assert all(a > b for a, b in zip(times[: mid + 1], times[1 : mid + 1])), name
        assert all(b <= a * 1.02 for a, b in zip(times[mid:], times[mid + 1 :])), name
    for s in SLICES:
        for base in ("rp", "ppt", "pivotrepair"):
            assert series["fullrepair"][s] <= series[base][s] * 1.01, (s, base)
