"""Extension benchmark — repair under rack oversubscription.

The paper's hose model constrains NICs only; real fabrics add rack
trunks.  This bench sweeps the oversubscription ratio and compares three
quantities per ratio:

* the **unconstrained** optimum (no trunks — the paper's setting),
* the **rack-aware LP** optimum (trunks enforced, intra-rack traffic
  free — what a rack-aware multi-pipeline scheduler could reach),
* **scaled FullRepair** — the rack-oblivious scheduler run on
  conservatively scaled per-node bandwidth (always trunk-feasible).

Expected shape: the rack-aware optimum barely moves until oversubscription
gets extreme (the LP exploits intra-rack hubs), while the conservative
scaling pays the full ratio — quantifying the head-room a rack-aware
FullRepair variant would have (future work the paper does not cover).
"""

from benchmarks.common import SEED, write_report
from repro.core import FullRepair
from repro.core.optimality import lp_max_throughput
from repro.net import BandwidthSnapshot, RackTopology, RepairContext, rack_scaled_context
import numpy as np

RATIOS = (1.0, 2.0, 4.0, 8.0)


def _context(seed):
    rng = np.random.default_rng(seed)
    snap = BandwidthSnapshot(
        uplink=rng.uniform(400, 1000, 12),
        downlink=rng.uniform(400, 1000, 12),
    )
    ids = rng.permutation(12)
    return RepairContext(
        snapshot=snap,
        requester=int(ids[0]),
        helpers=tuple(int(x) for x in ids[1:10]),
        k=6,
    )


def run_sweep():
    rows = []
    fr = FullRepair()
    for ratio in RATIOS:
        free = aware = scaled = 0.0
        samples = 8
        for s in range(samples):
            ctx = _context(SEED + s)
            topo = RackTopology.uniform(12, 4, oversubscription=ratio)
            free += lp_max_throughput(ctx)
            aware += lp_max_throughput(ctx, topology=topo)
            scaled += fr.schedule(rack_scaled_context(ctx, topo)).total_rate
        rows.append((ratio, free / samples, aware / samples, scaled / samples))
    return rows


def test_rack_oversubscription(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        "Repair throughput under rack oversubscription (12 nodes, racks of 4)",
        f"{'oversub':>8} {'no trunks':>10} {'rack-aware LP':>14} {'scaled FullRepair':>18}",
    ]
    for ratio, free, aware, scaled in rows:
        lines.append(f"{ratio:>7.1f}x {free:9.1f}  {aware:13.1f}  {scaled:17.1f}")
    write_report("rack_oversubscription", "\n".join(lines))
    for ratio, free, aware, scaled in rows:
        assert scaled <= aware + 1e-6 <= free + 1e-5
    # at mild oversubscription the rack-aware bound keeps most of the
    # unconstrained throughput while conservative scaling pays ~the ratio
    _, free2, aware2, scaled2 = rows[1]
    assert aware2 > 0.85 * free2
    assert scaled2 < 0.75 * aware2
