"""Extension benchmark — durability: what faster repair buys.

Chains two pieces: (1) each scheduler's measured full-node recovery
makespan (from the fullnode planner, as in ``bench_fullnode``), scaled
from the bench's 640 MiB node to a production-scale 10 TB node; (2) a
Monte-Carlo cluster lifetime simulation where a stripe dies if more than
n−k of its nodes are simultaneously inside a repair window.

Expected shape: loss probability and degraded-exposure stripe-hours both
drop monotonically with repair speed, so the scheduler ranking from
Figure 4 carries through to reliability — the argument that makes repair
speed an availability feature rather than a micro-optimisation.
"""

import numpy as np
import pytest

from benchmarks.common import SEED, write_report
from repro.analysis import compare_durability, render_durability
from repro.core import StripeRepairSpec, plan_full_node_repair
from repro.net import units
from repro.workloads import make_trace

#: Bench node holds 10 x 64 MiB; a production node ~10 TB.
SCALE_TO_PRODUCTION = (10 * 1024**4) / (10 * units.mib(64))


def _measured_makespans():
    trace = make_trace("tpcds", num_nodes=16, num_snapshots=600, seed=SEED)
    snap = trace.snapshot(int(trace.congested_instants()[0]))
    rng = np.random.default_rng(SEED)
    specs = []
    for i in range(10):
        nodes = rng.permutation(16)
        specs.append(
            StripeRepairSpec(
                stripe_id=f"s{i}",
                requester=int(nodes[0]),
                helpers=tuple(int(x) for x in nodes[1:9]),
                chunk_bytes=units.mib(64),
            )
        )
    out = {}
    for name in ("rp", "pivotrepair", "fullrepair"):
        plan = plan_full_node_repair(
            specs, snap, k=6, algorithm=name, strategy="batched"
        )
        out[name] = plan.makespan_seconds * SCALE_TO_PRODUCTION
    return out


def test_durability(benchmark):
    def run():
        makespans = _measured_makespans()
        results = compare_durability(
            makespans,
            num_nodes=16,
            n=9,
            k=6,
            num_stripes=64,
            mttf_hours=24.0 * 60,       # accelerated vs real-world years
            horizon_hours=24.0 * 365,
            trials=150,
            seed=SEED,
        )
        return makespans, results

    makespans, results = benchmark.pedantic(run, rounds=1, iterations=1)
    header = "full-node repair scaled to a 10 TB node:\n" + "\n".join(
        f"  {name:>12}: {secs / 3600:6.2f} h" for name, secs in sorted(makespans.items())
    )
    write_report("durability", header + "\n\n" + render_durability(results))
    ordered = sorted(results.values(), key=lambda r: r.repair_seconds)
    # exposure tracks repair speed (small slack: loss events truncate a
    # trial's accounting, and longer repair windows absorb more arrivals)
    exposures = [r.mean_exposed_stripe_hours for r in ordered]
    assert all(a <= b * 1.02 for a, b in zip(exposures, exposures[1:]))
    # loss probability is monotone (ties allowed at Monte-Carlo noise)
    losses = [r.loss_probability for r in ordered]
    assert all(a <= b + 0.05 for a, b in zip(losses, losses[1:]))
    # the headline: the fastest scheduler is strictly the most durable
    assert (
        results["fullrepair"].loss_probability
        < results["rp"].loss_probability
    )
    assert (
        results["fullrepair"].mean_exposed_stripe_hours
        < results["rp"].mean_exposed_stripe_hours
    )
