"""EC data-plane perf harness — machine-readable regression gate.

Times the GF(2^8)/RS data plane across every registered backend and
writes ``BENCH_ec.json`` at the repository root:

* per-kernel (``dot``, ``matvec``, ``mul_chunk``) throughput per backend
  per chunk size, in the same work-unit convention as the seed
  ``gf_kernels`` section of ``BENCH_planning.json`` (``dot`` counts
  input bytes combined, ``matvec`` counts matrix-cells x chunk bytes);
* whole-stripe RS(9, 6) encode / decode / repair rates on 8 MiB chunks,
  in stripe-bytes per second (the seed pytest-benchmark convention);
* fused-vs-naive speedup summary — the numbers the regression gate in
  ``tests/test_bench_ec.py`` tracks across commits;
* integrity-checksum overhead: CRC digest and slice-checksum rates and
  the digest cost relative to the fused decode it guards (gated <= 10%);
* an event-queue micro-benchmark: events/s of the batched
  ``EventQueue.run`` drain against the per-event ``step`` loop.

Run directly (``python -m benchmarks.bench_ec_throughput``), or with
``--smoke`` for a fast pass used by the test suite.  Like
``bench_planning`` this is a plain script whose artefact is the JSON.

On the paper's §IV-C premise (CPU is not the repair bottleneck because
GF combination outruns the network): measured on the reference CI-class
host (single 2.1 GHz Xeon core, numpy 2.x), the fused backend runs the
4x10 matrix x chunk kernel at ~2.7 GB/s in GF work units (matrix cells
x chunk bytes; ~17x the seed kernels) and combines ``dot`` inputs at
~1 GB/s (~6-8x, RAM-bound on the gather index stream) on 8 MiB
chunks — >20x / >7x a 1 Gbps line rate, so the premise holds with a
wide margin even in pure numpy (production SIMD stacks like ISA-L sit
another order above; the simulator's ``compute_s_per_byte`` default
models that class).  See ``docs/DATAPLANE.md``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from time import perf_counter

import numpy as np

from benchmarks.common import REPO_ROOT, SEED, quantile, write_json_report
from repro.ec import RSCode, available_backends, resolve
from repro.integrity import chunk_digest, slice_checksum
from repro.net import units
from repro.sim.events import EventQueue

SCHEMA_VERSION = 1

#: RS parameterisation for the stripe-level benchmarks (paper default).
RS_N, RS_K = 9, 6

#: Helper count for the dot/matvec kernel benchmarks (k of RS(14, 10),
#: matching the seed ``gf_kernels`` section of ``BENCH_planning.json``).
KERNEL_K = 10

#: Output rows of the matvec benchmark (parity rows of RS(14, 10)).
KERNEL_M = 4


def _median_time(fn, rounds: int) -> float:
    fn()  # warm up: table builds land outside the timed region
    samples = []
    for _ in range(rounds):
        start = perf_counter()
        fn()
        samples.append(perf_counter() - start)
    return quantile(samples, 0.5)


def _bench_kernels(chunk_bytes: int, rounds: int, backends) -> dict:
    """Per-backend dot / matvec / mul_chunk rates at one chunk size."""
    rng = np.random.default_rng(SEED)
    chunks = rng.integers(0, 256, size=(KERNEL_K, chunk_bytes), dtype=np.uint8)
    coeffs = [int(c) for c in rng.integers(1, 256, size=KERNEL_K)]
    mat = np.asarray(
        rng.integers(0, 256, size=(KERNEL_M, KERNEL_K)), dtype=np.uint8
    )
    dot_out = np.empty(chunk_bytes, dtype=np.uint8)
    dot_scratch = np.empty(chunk_bytes, dtype=np.uint8)
    mv_out = np.empty((KERNEL_M, chunk_bytes), dtype=np.uint8)
    mul_out = np.empty(chunk_bytes, dtype=np.uint8)

    mb = chunk_bytes / 1e6
    out: dict[str, dict] = {"chunk_bytes": chunk_bytes}
    for name in backends:
        be = resolve(name)
        t_dot = _median_time(
            lambda: be.dot(coeffs, chunks, out=dot_out, scratch=dot_scratch),
            rounds,
        )
        t_mv = _median_time(
            lambda: be.matmul_chunks(mat, chunks, out=mv_out), rounds
        )
        t_mul = _median_time(
            lambda: be.mul_chunk(173, chunks[0], out=mul_out), rounds
        )
        out[name] = {
            # input bytes combined per second (seed gf_kernels convention)
            "dot_mb_per_s": KERNEL_K * mb / t_dot,
            # matrix cells x chunk bytes per second (seed convention)
            "matvec_mb_per_s": KERNEL_M * KERNEL_K * mb / t_mv,
            "mul_chunk_mb_per_s": mb / t_mul,
        }
    # per-cell fused-vs-naive ratios: the regression gate compares these
    # like-for-like (same chunk size) between smoke and committed runs
    out["speedup"] = {
        f"{op}_fused_vs_naive": (
            out["fused"][f"{op}_mb_per_s"] / out["naive"][f"{op}_mb_per_s"]
        )
        for op in ("dot", "matvec", "mul_chunk")
    }
    return out


def _bench_rs(chunk_bytes: int, rounds: int, backends) -> dict:
    """Whole-stripe encode / decode / repair rates per backend.

    Rates are stripe bytes per second in the seed pytest-benchmark
    convention: encode reads k chunks and writes n (n x chunk bytes
    processed), decode and repair read k helper chunks.
    """
    rng = np.random.default_rng(SEED + 1)
    data = rng.integers(0, 256, size=(RS_K, chunk_bytes), dtype=np.uint8)
    mb = chunk_bytes / 1e6
    out: dict[str, dict] = {"chunk_bytes": chunk_bytes, "n": RS_N, "k": RS_K}
    for name in backends:
        code = RSCode(RS_N, RS_K, backend=name)
        stripe = code.encode(data)
        enc_out = np.empty((RS_N, chunk_bytes), dtype=np.uint8)
        dec_avail = {i: stripe[i] for i in range(RS_N) if i != 2}
        dec_out = np.empty((RS_K, chunk_bytes), dtype=np.uint8)
        rep_out = np.empty(chunk_bytes, dtype=np.uint8)
        rep_scratch = np.empty(chunk_bytes, dtype=np.uint8)
        t_enc = _median_time(lambda: code.encode(data, out=enc_out), rounds)
        t_dec = _median_time(lambda: code.decode(dec_avail, out=dec_out), rounds)
        t_rep = _median_time(
            lambda: code.repair(2, dec_avail, out=rep_out, scratch=rep_scratch),
            rounds,
        )
        out[name] = {
            "encode_mb_per_s": RS_N * mb / t_enc,
            "decode_mb_per_s": RS_K * mb / t_dec,
            "repair_mb_per_s": RS_K * mb / t_rep,
        }
    return out


def _bench_checksum(
    chunk_bytes: int, rounds: int, fused_decode_mb_per_s: float
) -> dict:
    """CRC digest / slice-checksum rates, and their cost vs fused decode.

    The integrity layer digests every stored chunk at ``put`` and every
    rebuilt chunk at settle, so the number that matters is the digest
    time for ONE chunk relative to the fused decode of the k chunks that
    produced it — ``digest_cost_vs_fused_decode``.  The committed-
    artefact gate in ``tests/test_bench_ec.py`` bounds that ratio at
    10%: checksumming must stay a rounding error next to the GF math.
    Timings are warm (first call primes zlib's table) like every other
    cell in this harness.
    """
    rng = np.random.default_rng(SEED + 2)
    chunk = rng.integers(0, 256, size=chunk_bytes, dtype=np.uint8)
    slice_bytes = min(units.kib(64), chunk_bytes)
    sl = chunk[:slice_bytes]
    mb = chunk_bytes / 1e6
    t_digest = _median_time(lambda: chunk_digest(chunk), rounds)
    t_slice = _median_time(lambda: slice_checksum(sl), rounds)
    # decode_mb_per_s counts the k helper chunks read (seed convention),
    # so the wall time of one fused decode is k x mb / rate
    t_decode = RS_K * mb / fused_decode_mb_per_s
    return {
        "chunk_bytes": chunk_bytes,
        "slice_bytes": slice_bytes,
        "digest_mb_per_s": mb / t_digest,
        "slice_checksum_mb_per_s": (slice_bytes / 1e6) / t_slice,
        "digest_cost_vs_fused_decode": t_digest / t_decode,
    }


def _bench_event_queue(num_events: int, per_timestamp: int, rounds: int) -> dict:
    """Events/s of the batched ``run`` drain vs the per-event ``step`` loop.

    The schedule mimics slice-pipelined repairs: long runs of completions
    sharing one analytic timestamp — the shape the same-time batch pop in
    :meth:`EventQueue.run` coalesces.
    """
    timestamps = max(1, num_events // per_timestamp)

    def _fill(q: EventQueue) -> None:
        for t in range(timestamps):
            when = float(t) * 1e-3
            for _ in range(per_timestamp):
                q.schedule(when, lambda: None)

    def _drain_run() -> None:
        q = EventQueue()
        _fill(q)
        q.run()

    def _drain_step() -> None:
        q = EventQueue()
        _fill(q)
        while q.step():
            pass

    # subtract the schedule-only cost so rates isolate the drain loop
    def _fill_only() -> None:
        _fill(EventQueue())

    t_fill = _median_time(_fill_only, rounds)
    t_run = max(_median_time(_drain_run, rounds) - t_fill, 1e-9)
    t_step = max(_median_time(_drain_step, rounds) - t_fill, 1e-9)
    total = timestamps * per_timestamp
    return {
        "events": total,
        "events_per_timestamp": per_timestamp,
        "batched_run_events_per_s": total / t_run,
        "step_loop_events_per_s": total / t_step,
        "batch_speedup": t_step / t_run,
    }


#: Independent measurement passes behind the gate's median ratios.
GATE_PASSES = 3


def _gate_speedups(rounds: int) -> dict:
    """Median-of-passes fused-vs-naive kernel ratios on 1 MiB chunks.

    The regression gate in ``tests/test_bench_ec.py`` compares these
    between a fresh smoke run and the committed artefact, so both run
    modes measure them with the *same* protocol (same cell, same rounds,
    median of :data:`GATE_PASSES` passes) — host-speed drift cancels in
    the ratio and the median absorbs scheduling noise.
    """
    passes = [
        _bench_kernels(units.mib(1), rounds, ("naive", "fused"))["speedup"]
        for _ in range(GATE_PASSES)
    ]
    return {key: quantile([p[key] for p in passes], 0.5) for key in passes[0]}


def _speedups(kernels: dict, rs: dict) -> dict:
    """Headline fused-vs-naive ratios (largest kernel cell + RS rates)."""
    out = dict(kernels["speedup"])
    for op in ("encode", "decode", "repair"):
        out[f"{op}_fused_vs_naive"] = (
            rs["fused"][f"{op}_mb_per_s"] / rs["naive"][f"{op}_mb_per_s"]
        )
    return out


def run(smoke: bool = False, out_path=None) -> dict:
    """Execute the harness and write ``BENCH_ec.json``; returns it.

    ``out_path`` overrides the default repo-root location (used by the
    smoke tier so a smoke pass never overwrites the full-run artefact).
    """
    backends = available_backends()
    if smoke:
        kernel_sizes, kernel_rounds = (units.mib(1),), 3
        rs_bytes, rs_rounds = units.mib(1), 3
        ev_events, ev_per_ts, ev_rounds = 20_000, 8, 3
    else:
        kernel_sizes, kernel_rounds = (units.mib(1), units.mib(8)), 7
        rs_bytes, rs_rounds = units.mib(8), 7
        ev_events, ev_per_ts, ev_rounds = 200_000, 8, 5
    kernels = {
        f"chunk_{size // units.KIB}kib": _bench_kernels(size, kernel_rounds, backends)
        for size in kernel_sizes
    }
    rs = _bench_rs(rs_bytes, rs_rounds, backends)
    headline_cell = kernels[f"chunk_{kernel_sizes[-1] // units.KIB}kib"]
    report = {
        "benchmark": "ec",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "smoke": smoke,
            "seed": SEED,
            "backends": list(backends),
            "kernel_rounds": kernel_rounds,
            "rs_chunk_bytes": rs_bytes,
        },
        "kernels": kernels,
        "rs": rs,
        "speedup": _speedups(headline_cell, rs),
        "gate": {
            "chunk_bytes": units.mib(1),
            "passes": GATE_PASSES,
            "rounds": 3,
            "speedup": _gate_speedups(3),
        },
        "checksum": _bench_checksum(
            rs_bytes, rs_rounds, rs["fused"]["decode_mb_per_s"]
        ),
        "event_queue": _bench_event_queue(ev_events, ev_per_ts, ev_rounds),
    }
    path = write_json_report("ec", report, path=out_path)
    print(f"wrote {path}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast pass with 1 MiB chunks and reduced rounds; same schema",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="report path (default: BENCH_ec.json at the repo root; smoke "
        "runs default to BENCH_ec.smoke.json so they never overwrite the "
        "committed full-run artefact)",
    )
    args = parser.parse_args(argv)
    out_path = args.out
    if out_path is None and args.smoke:
        out_path = REPO_ROOT / "BENCH_ec.smoke.json"
    report = run(smoke=args.smoke, out_path=out_path)
    for size, cell in report["kernels"].items():
        for name in report["config"]["backends"]:
            r = cell[name]
            print(
                f"{size} {name}: dot {r['dot_mb_per_s']:.0f} MB/s, "
                f"matvec {r['matvec_mb_per_s']:.0f} MB/s, "
                f"mul_chunk {r['mul_chunk_mb_per_s']:.0f} MB/s"
            )
    for name in report["config"]["backends"]:
        r = report["rs"][name]
        print(
            f"rs(9,6) {name}: encode {r['encode_mb_per_s']:.0f} MB/s, "
            f"decode {r['decode_mb_per_s']:.0f} MB/s, "
            f"repair {r['repair_mb_per_s']:.0f} MB/s"
        )
    sp = report["speedup"]
    print(
        f"fused vs naive: dot {sp['dot_fused_vs_naive']:.1f}x, "
        f"matvec {sp['matvec_fused_vs_naive']:.1f}x, "
        f"encode {sp['encode_fused_vs_naive']:.1f}x"
    )
    ck = report["checksum"]
    print(
        f"checksum: digest {ck['digest_mb_per_s']:.0f} MB/s, "
        f"slice crc {ck['slice_checksum_mb_per_s']:.0f} MB/s, "
        f"cost vs fused decode {ck['digest_cost_vs_fused_decode'] * 100:.1f}%"
    )
    ev = report["event_queue"]
    print(
        f"event queue: batched {ev['batched_run_events_per_s']:.0f} ev/s, "
        f"step {ev['step_loop_events_per_s']:.0f} ev/s "
        f"({ev['batch_speedup']:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
