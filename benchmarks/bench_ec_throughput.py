"""Data-plane microbenchmarks — GF(2^8)/RS coding throughput.

The paper argues (§IV-C) that CPU cost is not the bottleneck of
multi-pipeline repair because GF combination runs far faster than the
network moves data.  These microbenchmarks measure this library's actual
numpy data-plane against that claim: XOR accumulation, coefficient
scaling, whole-stripe encode, and single-chunk repair, in bytes/second
on 8 MiB chunks.

A 1 Gbps link moves 125 MB/s; every kernel below must clear that line
rate — the premise holds even for this pure-numpy data plane (production
stacks use SIMD GF kernels like ISA-L, another ~10x; the simulator's
``compute_s_per_byte`` default models that class of kernel, not Python).
"""

import numpy as np
import pytest

from repro.ec import RSCode, gf256
from repro.net import units

CHUNK = units.mib(8)


@pytest.fixture(scope="module")
def chunks():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, (10, CHUNK), dtype=np.uint8)


def _report(benchmark, processed_bytes):
    rate = processed_bytes / benchmark.stats.stats.mean
    benchmark.extra_info["throughput_MBps"] = rate / 1e6
    # the network-bottleneck premise: data plane beats 1 Gbps line rate
    assert rate > units.mbps_to_bytes_per_s(1000.0)


def test_xor_accumulate(benchmark, chunks):
    acc = np.zeros(CHUNK, dtype=np.uint8)
    benchmark(gf256.addmul_chunk, acc, 1, chunks[0])
    _report(benchmark, CHUNK)


def test_scaled_accumulate(benchmark, chunks):
    acc = np.zeros(CHUNK, dtype=np.uint8)
    benchmark(gf256.addmul_chunk, acc, 173, chunks[0])
    _report(benchmark, CHUNK)


def test_mul_chunk(benchmark, chunks):
    benchmark(gf256.mul_chunk, 87, chunks[0])
    _report(benchmark, CHUNK)


def test_stripe_encode(benchmark, chunks):
    code = RSCode(9, 6)
    data = chunks[:6]
    benchmark(code.encode, data)
    _report(benchmark, 9 * CHUNK)  # reads k chunks, writes n


def test_single_chunk_repair(benchmark, chunks):
    code = RSCode(9, 6)
    stripe = code.encode(chunks[:6])
    available = {i: stripe[i] for i in range(9) if i != 2}
    benchmark(code.repair, 2, available)
    _report(benchmark, 6 * CHUNK)
